//! Fig. 3 — GPU resource consumption of the Rodinia suite run
//! sequentially on one node: bandwidth, SM utilization and memory over
//! time, with per-application grid lines.

use crate::render::{f, Table};
use knots_forecast::stats::percentile;
use knots_sim::cluster::{Cluster, ClusterConfig};
use knots_sim::ids::NodeId;
use knots_sim::resources::GpuModel;
use knots_sim::time::{SimDuration, SimTime};
use knots_workloads::rodinia::RodiniaApp;
use serde::Serialize;

/// One time-bucket of the figure's three panels.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Row {
    /// Bucket start, seconds.
    pub t_secs: f64,
    /// Receive bandwidth, MB/s (panel 1).
    pub rx_mbps: f64,
    /// Transmit bandwidth, MB/s (panel 1).
    pub tx_mbps: f64,
    /// SM utilization, percent (panel 2).
    pub sm_pct: f64,
    /// Memory used, MB (panel 3).
    pub mem_mb: f64,
}

/// The figure's data plus the per-application boundaries (grid lines).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3 {
    /// Time series, bucketed.
    pub rows: Vec<Row>,
    /// `(app name, completion time in seconds)` boundaries.
    pub boundaries: Vec<(String, f64)>,
    /// Median-to-peak SM ratio over the whole suite (paper: ~90×).
    pub sm_median_to_peak: f64,
    /// Median-to-peak bandwidth spread (paper: ~400×; medians are zero, so
    /// this reports peak / mean instead).
    pub bw_peak_to_mean: f64,
}

/// Execute the whole suite sequentially on a single simulated P100 and
/// sample its telemetry.
pub fn run(scale: f64, bucket_ms: u64) -> Fig3 {
    let mut cfg = ClusterConfig::homogeneous(1, GpuModel::P100);
    cfg.overheads.cold_start_pull = SimDuration::ZERO;
    let mut cluster = Cluster::new(cfg);
    let tick = SimDuration::from_millis(10);
    let mut rows = Vec::new();
    let mut boundaries = Vec::new();

    let mut acc = (0.0, 0.0, 0.0, 0.0, 0usize);
    let mut next_bucket = SimDuration::from_millis(bucket_ms);
    for app in RodiniaApp::ALL {
        let id = cluster.submit(app.pod_spec(scale, 0.2), cluster.now());
        cluster.place(id, NodeId(0)).expect("placement on idle node");
        while !cluster.pod(id).expect("pod exists").state().is_terminal() {
            cluster.step(tick);
            let s = cluster.node(NodeId(0)).expect("node 0").last_sample();
            acc = (
                acc.0 + s.rx_mbps,
                acc.1 + s.tx_mbps,
                acc.2 + s.sm_util,
                acc.3 + s.mem_used_mb,
                acc.4 + 1,
            );
            if cluster.now().saturating_since(SimTime::ZERO) >= next_bucket {
                let n = acc.4.max(1) as f64;
                rows.push(Row {
                    t_secs: cluster.now().as_secs_f64(),
                    rx_mbps: acc.0 / n,
                    tx_mbps: acc.1 / n,
                    sm_pct: acc.2 / n * 100.0,
                    mem_mb: acc.3 / n,
                });
                acc = (0.0, 0.0, 0.0, 0.0, 0);
                next_bucket += SimDuration::from_millis(bucket_ms);
            }
        }
        boundaries.push((app.name().to_string(), cluster.now().as_secs_f64()));
    }

    let sm: Vec<f64> = rows.iter().map(|r| r.sm_pct).collect();
    let bw: Vec<f64> = rows.iter().map(|r| r.rx_mbps + r.tx_mbps).collect();
    let sm_peak = sm.iter().cloned().fold(0.0f64, f64::max);
    let sm_median = percentile(&sm, 0.5).max(1e-9);
    let bw_peak = bw.iter().cloned().fold(0.0f64, f64::max);
    let bw_mean = (bw.iter().sum::<f64>() / bw.len().max(1) as f64).max(1e-9);
    Fig3 {
        rows,
        boundaries,
        sm_median_to_peak: sm_peak / sm_median,
        bw_peak_to_mean: bw_peak / bw_mean,
    }
}

/// Render (downsampled to at most `max_rows` lines).
pub fn table(fig: &Fig3, max_rows: usize) -> Table {
    let mut t = Table::new(
        format!(
            "Fig. 3 — Rodinia suite on one P100 (SM median→peak {:.0}x, BW peak/mean {:.0}x)",
            fig.sm_median_to_peak, fig.bw_peak_to_mean
        ),
        &["t(s)", "rx MB/s", "tx MB/s", "SM%", "mem MB"],
    );
    let step = (fig.rows.len() / max_rows.max(1)).max(1);
    for r in fig.rows.iter().step_by(step) {
        t.row(vec![
            f(r.t_secs, 1),
            f(r.rx_mbps, 0),
            f(r.tx_mbps, 0),
            f(r.sm_pct, 1),
            f(r.mem_mb, 0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_sequentially_with_nine_boundaries() {
        let fig = run(0.2, 200);
        assert_eq!(fig.boundaries.len(), 9);
        assert!(fig.boundaries.windows(2).all(|w| w[0].1 < w[1].1));
        assert!(!fig.rows.is_empty());
        // The figure's headline statistics: large median-to-peak spreads.
        assert!(fig.sm_median_to_peak > 5.0, "sm spread {}", fig.sm_median_to_peak);
        assert!(fig.bw_peak_to_mean > 5.0, "bw spread {}", fig.bw_peak_to_mean);
        // Memory stays within the device.
        assert!(fig.rows.iter().all(|r| r.mem_mb <= 16_384.0));
    }
}
