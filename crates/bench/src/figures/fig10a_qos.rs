//! Fig. 10a — average QoS violations per thousand inference queries, per
//! app-mix, per scheduler.

use crate::figures::fig06_09_cluster::ClusterStudy;
use crate::render::{f, Table};
use knots_core::experiment::CLUSTER_SCHEDULERS;
use serde::Serialize;

/// One mix row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Mix label.
    pub mix: String,
    /// `(scheduler, violations per kilo-inference)`.
    pub per_kilo: Vec<(String, f64)>,
}

/// Extract the figure from a finished cluster study.
pub fn run(study: &ClusterStudy) -> Vec<Row> {
    study
        .mixes
        .iter()
        .enumerate()
        .map(|(m, mix)| Row {
            mix: mix.clone(),
            per_kilo: CLUSTER_SCHEDULERS
                .iter()
                .map(|s| (s.to_string(), study.report(m, s).violations_per_kilo()))
                .collect(),
        })
        .collect()
}

/// Render.
pub fn table(rows: &[Row]) -> Table {
    let mut headers = vec!["mix"];
    headers.extend(CLUSTER_SCHEDULERS);
    let mut t = Table::new("Fig. 10a — QoS violations per kilo inference queries", &headers);
    for r in rows {
        let mut cells = vec![r.mix.clone()];
        cells.extend(r.per_kilo.iter().map(|(_, v)| f(*v, 1)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_core::experiment::ExperimentConfig;
    use knots_sim::time::SimDuration;

    #[test]
    fn qos_ordering_on_a_short_run() {
        // Even a 60 s window shows the headline ordering on the loaded mix:
        // the GPU-aware schedulers violate far less than Res-Ag.
        let cfg = ExperimentConfig { duration: SimDuration::from_secs(60), ..Default::default() };
        let study = ClusterStudy::run(&cfg);
        let rows = run(&study);
        assert_eq!(rows.len(), 3);
        let mix1 = &rows[0].per_kilo;
        let get = |n: &str| mix1.iter().find(|(s, _)| s == n).expect("present").1;
        assert!(get("Res-Ag") > get("CBP+PP"), "Res-Ag {} vs PP {}", get("Res-Ag"), get("CBP+PP"));
        assert!(get("Res-Ag") > get("CBP"));
        assert!(table(&rows).render().contains("Res-Ag"));
    }
}
