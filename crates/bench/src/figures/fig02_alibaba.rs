//! Fig. 2 — Alibaba trace analysis: (a) latency-critical metric
//! correlation heat map, (b) utilization CDFs, (c) batch metric
//! correlation heat map.

use crate::render::{f, Table};
use knots_forecast::spearman::correlation_matrix;
use knots_forecast::stats::cdf_points;
use knots_workloads::alibaba::{
    batch_metric_series, container_records, lc_metric_series, trace_scale, BATCH_METRICS,
    LC_METRICS,
};
use serde::Serialize;

/// The figure's computed content.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2 {
    /// 8×8 Spearman matrix over LC metrics (Fig. 2a).
    pub lc_corr: Vec<Vec<f64>>,
    /// 6×6 Spearman matrix over batch metrics (Fig. 2c).
    pub batch_corr: Vec<Vec<f64>>,
    /// CDF of average CPU utilization (value, fraction).
    pub cdf_avg_cpu: Vec<(f64, f64)>,
    /// CDF of average memory utilization.
    pub cdf_avg_mem: Vec<(f64, f64)>,
    /// CDF of maximum CPU utilization.
    pub cdf_max_cpu: Vec<(f64, f64)>,
    /// CDF of maximum memory utilization.
    pub cdf_max_mem: Vec<(f64, f64)>,
    /// Mean of average CPU utilization (paper: ≈ 47%).
    pub mean_avg_cpu: f64,
    /// Mean of average memory utilization (paper: ≈ 76%).
    pub mean_avg_mem: f64,
}

/// Synthesize the trace statistics and compute the figure.
pub fn run(seed: u64) -> Fig2 {
    let records = container_records(trace_scale::LC_CONTAINERS, seed);
    let avg_cpu: Vec<f64> = records.iter().map(|r| r.avg_cpu * 100.0).collect();
    let avg_mem: Vec<f64> = records.iter().map(|r| r.avg_mem * 100.0).collect();
    let max_cpu: Vec<f64> = records.iter().map(|r| r.max_cpu * 100.0).collect();
    let max_mem: Vec<f64> = records.iter().map(|r| r.max_mem * 100.0).collect();
    Fig2 {
        lc_corr: correlation_matrix(&lc_metric_series(4096, seed ^ 1)),
        batch_corr: correlation_matrix(&batch_metric_series(4096, seed ^ 2)),
        cdf_avg_cpu: cdf_points(&avg_cpu, 20),
        cdf_avg_mem: cdf_points(&avg_mem, 20),
        cdf_max_cpu: cdf_points(&max_cpu, 20),
        cdf_max_mem: cdf_points(&max_mem, 20),
        mean_avg_cpu: knots_forecast::stats::mean(&avg_cpu),
        mean_avg_mem: knots_forecast::stats::mean(&avg_mem),
    }
}

fn corr_table(title: &str, names: &[&str], m: &[Vec<f64>]) -> Table {
    let mut headers = vec![""];
    headers.extend_from_slice(names);
    let mut t = Table::new(title, &headers);
    for (i, row) in m.iter().enumerate() {
        let mut cells = vec![names[i].to_string()];
        cells.extend(row.iter().map(|v| f(*v, 2)));
        t.row(cells);
    }
    t
}

/// Render the three panels.
pub fn tables(fig: &Fig2) -> Vec<Table> {
    let a = corr_table(
        "Fig. 2a — Spearman correlation, latency-critical task metrics",
        &LC_METRICS,
        &fig.lc_corr,
    );
    let c = corr_table(
        "Fig. 2c — Spearman correlation, batch task metrics",
        &BATCH_METRICS,
        &fig.batch_corr,
    );
    let mut b = Table::new(
        format!(
            "Fig. 2b — utilization CDFs (mean avg cpu {:.1}%, mean avg mem {:.1}%)",
            fig.mean_avg_cpu, fig.mean_avg_mem
        ),
        &["util%", "avgCPU", "avgMem", "maxCPU", "maxMem"],
    );
    for i in 0..fig.cdf_avg_cpu.len() {
        b.row(vec![
            f(i as f64 * 100.0 / (fig.cdf_avg_cpu.len() - 1) as f64, 0),
            f(fig.cdf_avg_cpu[i].1, 3),
            f(fig.cdf_avg_mem[i].1, 3),
            f(fig.cdf_max_cpu[i].1, 3),
            f(fig.cdf_max_mem[i].1, 3),
        ]);
    }
    vec![a, b, c]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig2_statistics() {
        let fig = run(7);
        // Fig 2b moments.
        assert!((fig.mean_avg_cpu - 47.0).abs() < 3.0, "avg cpu {}", fig.mean_avg_cpu);
        assert!((fig.mean_avg_mem - 76.0).abs() < 3.0, "avg mem {}", fig.mean_avg_mem);
        // Fig 2c: strong batch correlations; Fig 2a: none.
        assert!(fig.batch_corr[0][1] > 0.6);
        let max_off_diag = fig
            .lc_corr
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter().enumerate().filter(move |(j, _)| i != *j).map(|(_, v)| v.abs())
            })
            .fold(0.0f64, f64::max);
        assert!(max_off_diag < 0.2, "LC metrics must look structureless: {max_off_diag}");
    }

    #[test]
    fn renders_three_panels() {
        let fig = run(7);
        let t = tables(&fig);
        assert_eq!(t.len(), 3);
        assert!(t[0].render().contains("cpu_util"));
        assert!(t[2].render().contains("core_util"));
    }
}
