//! Chaos sweep: QoS, throughput and crash behaviour vs fault intensity.
//!
//! DESIGN.md §10's degradation policy makes a quantitative claim — the
//! control loop degrades *gracefully* as faults ramp up, it does not fall
//! over. This sweep measures that: for each scheduler, seeded fault plans
//! of increasing intensity (faults per simulated minute) are replayed
//! against the same workload, and each leg reports QoS violations,
//! completion rate, crash counts and the degradation machinery's own
//! accounting (give-ups, rejected samples). Intensity 0.0 is the fault-free
//! baseline: its plan is empty, so its row must match a plain run exactly.

use crate::parallel::run_jobs;
use crate::render::{f, Table};
use knots_chaos::{gen, GenConfig};
use knots_core::experiment::{run_mix_with_chaos, scheduler_by_name, ExperimentConfig};
use knots_core::metrics::RunReport;
use knots_sim::time::SimDuration;
use knots_workloads::AppMix;
use serde::Serialize;

/// Schedulers the sweep compares: the harvesting baseline and the paper's
/// full system, whose stale-series fallback collapses onto that baseline.
pub const CHAOS_SCHEDULERS: [&str; 2] = ["Res-Ag", "CBP+PP"];

/// Telemetry age beyond which schedulers fall back to their Res-Ag-like
/// baseline during the sweep. Probes fire every heartbeat (10 ms), so only
/// genuine dropouts (1-10 s windows) and failed nodes exceed this.
pub fn sweep_freshness() -> SimDuration {
    SimDuration::from_secs(2)
}

/// One (scheduler, intensity) leg of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosRow {
    /// Scheduler label.
    pub scheduler: String,
    /// Injected faults per simulated minute.
    pub faults_per_minute: f64,
    /// Faults actually injected (all kinds pooled).
    pub faults_injected: u64,
    /// QoS violations per kilo query.
    pub viol_per_kilo: f64,
    /// Completed / submitted, percent.
    pub completion_pct: f64,
    /// Pod crashes (OOM plus node failures).
    pub crashes: usize,
    /// Pods abandoned at the crash-loop cap.
    pub gave_up: u64,
    /// Non-finite samples the TSDB refused.
    pub rejected_samples: u64,
}

fn row(scheduler: &str, fpm: f64, r: &RunReport) -> ChaosRow {
    let fa = &r.faults;
    ChaosRow {
        scheduler: scheduler.to_string(),
        faults_per_minute: fpm,
        faults_injected: fa.node_failures
            + fa.degradations
            + fa.probe_dropouts
            + fa.corruption_windows
            + fa.heartbeat_delays,
        viol_per_kilo: r.violations_per_kilo(),
        completion_pct: if r.submitted == 0 {
            0.0
        } else {
            r.completed as f64 * 100.0 / r.submitted as f64
        },
        crashes: r.crashes,
        gave_up: fa.gave_up,
        rejected_samples: fa.rejected_samples,
    }
}

/// Run one (scheduler, intensity) leg: generate the plan from the
/// experiment seed and replay it with the stale-series fallback armed.
pub fn run_leg(scheduler: &str, fpm: f64, cfg: &ExperimentConfig) -> ChaosRow {
    let plan = gen::generate(&GenConfig {
        seed: cfg.seed,
        nodes: cfg.nodes,
        duration: cfg.duration,
        faults_per_minute: fpm,
    });
    let mut cfg = *cfg;
    cfg.orch.freshness = Some(sweep_freshness());
    let sched = scheduler_by_name(scheduler).expect("known scheduler");
    let r = run_mix_with_chaos(sched, AppMix::Mix2, &cfg, knots_obs::Obs::disabled(), plan);
    row(scheduler, fpm, &r)
}

/// Sweep every scheduler over every intensity on `threads` workers. Rows
/// come back in submission order (scheduler-major), so the rendered table
/// and its JSON are byte-stable across thread counts.
pub fn run(cfg: &ExperimentConfig, intensities: &[f64], threads: usize) -> Vec<ChaosRow> {
    let jobs: Vec<_> = CHAOS_SCHEDULERS
        .iter()
        .flat_map(|&s| intensities.iter().map(move |&fpm| (s, fpm)))
        .map(|(s, fpm)| {
            let cfg = *cfg;
            move || run_leg(s, fpm, &cfg)
        })
        .collect();
    run_jobs(jobs, threads)
}

/// Render the sweep.
pub fn table(rows: &[ChaosRow]) -> Table {
    let mut t = Table::new(
        "Chaos sweep — QoS / throughput / crashes vs fault intensity",
        &[
            "scheduler",
            "faults/min",
            "injected",
            "viol/k",
            "completed%",
            "crashes",
            "gave up",
            "rejected",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scheduler.clone(),
            f(r.faults_per_minute, 1),
            r.faults_injected.to_string(),
            f(r.viol_per_kilo, 1),
            f(r.completion_pct, 1),
            r.crashes.to_string(),
            r.gave_up.to_string(),
            r.rejected_samples.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_core::experiment::run_mix;

    fn quick() -> ExperimentConfig {
        ExperimentConfig { duration: SimDuration::from_secs(30), ..Default::default() }
    }

    #[test]
    fn sweep_runs_and_keeps_submission_order() {
        let rows = run(&quick(), &[0.0, 20.0], 4);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].scheduler, "Res-Ag");
        assert_eq!(rows[3].scheduler, "CBP+PP");
        assert_eq!(rows[0].faults_injected, 0, "zero intensity injects nothing");
        assert!(rows[1].faults_injected > 0, "20/min over 30 s injects faults");
        assert!(table(&rows).render().contains("faults/min"));
    }

    #[test]
    fn zero_intensity_leg_matches_a_plain_run() {
        // An empty plan must leave the run on the fault-free code path; only
        // the armed freshness bound differs from run_mix, and with 10 ms
        // probes nothing is ever stale, so the reports agree.
        let cfg = quick();
        let leg = run_leg("Res-Ag", 0.0, &cfg);
        let mut plain_cfg = cfg;
        plain_cfg.orch.freshness = Some(sweep_freshness());
        let plain = run_mix(scheduler_by_name("Res-Ag").unwrap(), AppMix::Mix2, &plain_cfg);
        assert_eq!(leg.viol_per_kilo, plain.violations_per_kilo());
        assert_eq!(leg.crashes, plain.crashes);
        assert_eq!(leg.faults_injected, 0);
    }
}
