//! Quality ablations of the design choices DESIGN.md calls out: the
//! resize percentile (§IV-C picks the 80th), the correlation threshold
//! (Algorithm 1 uses 0.5), the sliding-window length `d`, and the bin
//! packing strategy. Each knob is swept over one loaded app-mix run and
//! scored on the metrics it trades off.

use crate::render::{f, Table};
use knots_core::experiment::{run_mix, ExperimentConfig};
use knots_core::metrics::RunReport;
use knots_sched::binpack::PackStrategy;
use knots_sched::cbp::CbpConfig;
use knots_sched::pp::{CbpPp, PpConfig};
use knots_sched::resag::ResAg;
use knots_sim::time::SimDuration;
use knots_workloads::AppMix;
use serde::Serialize;

/// One swept configuration and its outcome.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Knob label, e.g. `"p50"`.
    pub setting: String,
    /// QoS violations per kilo query.
    pub viol_per_kilo: f64,
    /// OOM crashes.
    pub crashes: usize,
    /// Resize actions issued (the §IV-C "constant resizing" cost proxy).
    pub mean_active_util: f64,
    /// Energy, joules.
    pub energy_joules: f64,
    /// Batch JCT average, seconds.
    pub batch_jct_avg: f64,
}

fn row(setting: String, r: &RunReport) -> AblationRow {
    AblationRow {
        setting,
        viol_per_kilo: r.violations_per_kilo(),
        crashes: r.crashes,
        mean_active_util: r.mean_active_util(),
        energy_joules: r.energy_joules,
        batch_jct_avg: r.batch_jct.avg,
    }
}

fn pp_with(cbp: CbpConfig) -> Box<CbpPp> {
    Box::new(CbpPp::with_config(PpConfig { cbp, ..PpConfig::default() }))
}

/// The knob sweeps need contention to differentiate: run them at 1.5× the
/// default arrival rates and double-length batch jobs.
fn loaded(cfg: &ExperimentConfig) -> ExperimentConfig {
    ExperimentConfig { rate_scale: 1.5, batch_scale: 2.0, ..*cfg }
}

/// Sweep the CBP resize percentile (50/60/80/95/99). The paper picks 80:
/// lower percentiles "lead to constant resizing", higher ones forgo the
/// harvesting opportunity.
pub fn resize_percentile(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    [0.50, 0.60, 0.80, 0.95, 0.99]
        .iter()
        .map(|&p| {
            let sched = pp_with(CbpConfig { resize_percentile: p, ..CbpConfig::default() });
            let r = run_mix(sched, AppMix::Mix1, &loaded(cfg));
            row(format!("p{:.0}", p * 100.0), &r)
        })
        .collect()
}

/// Sweep the Spearman co-location threshold (Algorithm 1 uses 0.5).
pub fn correlation_threshold(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    [0.1, 0.3, 0.5, 0.8, 1.0]
        .iter()
        .map(|&t| {
            let sched = pp_with(CbpConfig { correlation_threshold: t, ..CbpConfig::default() });
            let r = run_mix(sched, AppMix::Mix1, &loaded(cfg));
            row(format!("rho>{t:.1}"), &r)
        })
        .collect()
}

/// Sweep the sliding-window length `d` (§IV-C; default 5 s).
pub fn window_length(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    [1u64, 2, 5, 10, 20]
        .iter()
        .map(|&secs| {
            let mut c = loaded(cfg);
            c.orch.window = SimDuration::from_secs(secs);
            let r = run_mix(Box::new(CbpPp::new()), AppMix::Mix1, &c);
            row(format!("d={secs}s"), &r)
        })
        .collect()
}

/// Compare bin-packing strategies under Res-Ag (the scheduler where the
/// strategy is the whole policy).
pub fn pack_strategy(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    [
        ("first-fit", PackStrategy::FirstFit),
        ("best-fit", PackStrategy::BestFit),
        ("worst-fit", PackStrategy::WorstFit),
    ]
    .iter()
    .map(|(name, strat)| {
        let r = run_mix(Box::new(ResAg::with_strategy(*strat)), AppMix::Mix1, cfg);
        row(name.to_string(), &r)
    })
    .collect()
}

/// Render one sweep.
pub fn table(title: &str, rows: &[AblationRow]) -> Table {
    let mut t = Table::new(
        title,
        &["setting", "viol/k", "crashes", "active util%", "energy kJ", "batch JCT s"],
    );
    for r in rows {
        t.row(vec![
            r.setting.clone(),
            f(r.viol_per_kilo, 1),
            r.crashes.to_string(),
            f(r.mean_active_util, 1),
            f(r.energy_joules / 1000.0, 1),
            f(r.batch_jct_avg, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig { duration: SimDuration::from_secs(30), ..Default::default() }
    }

    #[test]
    fn percentile_sweep_runs_and_orders() {
        let rows = resize_percentile(&quick());
        assert_eq!(rows.len(), 5);
        assert!(table("t", &rows).render().contains("p80"));
    }

    #[test]
    fn pack_strategy_sweep_runs() {
        let rows = pack_strategy(&quick());
        assert_eq!(rows.len(), 3);
    }
}
