//! Fig. 11a — normalized cluster power per scheduler per app-mix
//! (normalized to the Uniform baseline, as the paper normalizes to the
//! GPU-agnostic scheduler's draw).

use crate::figures::fig06_09_cluster::ClusterStudy;
use crate::render::{f, Table};
use knots_core::experiment::CLUSTER_SCHEDULERS;
use serde::Serialize;

/// One mix row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Mix label.
    pub mix: String,
    /// `(scheduler, normalized energy)` with Uniform = 1.0.
    pub normalized: Vec<(String, f64)>,
}

/// Extract the figure from a finished cluster study.
pub fn run(study: &ClusterStudy) -> Vec<Row> {
    study
        .mixes
        .iter()
        .enumerate()
        .map(|(m, mix)| {
            let base = study.report(m, "Uniform").energy_joules.max(1e-9);
            Row {
                mix: mix.clone(),
                normalized: CLUSTER_SCHEDULERS
                    .iter()
                    .map(|s| (s.to_string(), study.report(m, s).energy_joules / base))
                    .collect(),
            }
        })
        .collect()
}

/// Mean energy saving of CBP+PP vs the Uniform baseline across mixes
/// (the paper's headline "33% cluster-wide energy savings on average").
pub fn mean_pp_saving(rows: &[Row]) -> f64 {
    let savings: Vec<f64> = rows
        .iter()
        .map(|r| 1.0 - r.normalized.iter().find(|(s, _)| s == "CBP+PP").expect("CBP+PP present").1)
        .collect();
    savings.iter().sum::<f64>() / savings.len().max(1) as f64
}

/// Render.
pub fn table(rows: &[Row]) -> Table {
    let mut headers = vec!["mix"];
    headers.extend(CLUSTER_SCHEDULERS);
    let mut t = Table::new(
        format!(
            "Fig. 11a — normalized cluster energy (Uniform = 1.0; CBP+PP saves {:.0}% on average)",
            mean_pp_saving(rows) * 100.0
        ),
        &headers,
    );
    for r in rows {
        let mut cells = vec![r.mix.clone()];
        cells.extend(r.normalized.iter().map(|(_, v)| f(*v, 2)));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_core::experiment::ExperimentConfig;
    use knots_sim::time::SimDuration;

    #[test]
    fn pp_saves_energy_vs_uniform() {
        let cfg = ExperimentConfig { duration: SimDuration::from_secs(60), ..Default::default() };
        let study = ClusterStudy::run(&cfg);
        let rows = run(&study);
        // Uniform is 1.0 by construction.
        for r in &rows {
            let uni = r.normalized.iter().find(|(s, _)| s == "Uniform").expect("present").1;
            assert!((uni - 1.0).abs() < 1e-9);
        }
        // On the loaded mix, consolidation buys real savings.
        let pp1 = rows[0].normalized.iter().find(|(s, _)| s == "CBP+PP").expect("pp").1;
        assert!(pp1 < 1.0, "PP mix1 normalized energy {pp1}");
        assert!(mean_pp_saving(&rows) > 0.0);
    }
}
