//! The `experiments trace` study: the §V-C DNN bake-off run with causal
//! tracing on, clean and under a seeded fault plan, folding every leg's
//! spans into a per-scheduler stage-latency breakdown plus a
//! Perfetto-loadable Chrome trace per leg.
//!
//! Every leg gets its own [`Tracer`], runs as a pure function of
//! `(scheduler, faulted, seed)`, and legs reassemble in a fixed order — so
//! the whole study (tables, Chrome trace bytes, digest) is byte-identical
//! at any `--threads` setting and across same-seed runs.

use crate::render::{f, Table};
use knots_chaos::{gen, FaultPlan, GenConfig};
use knots_core::experiment::{run_dnn_traced, scheduler_by_name, DNN_SCHEDULERS};
use knots_core::metrics::RunReport;
use knots_obs::Obs;
use knots_trace::{breakdown, chrome, StageBreakdownRow, Tracer};
use knots_workloads::dnn::DnnWorkloadConfig;
use serde::Serialize;

/// Span ring capacity per leg — large enough that smoke and compressed
/// workloads never evict, while still bounding a runaway full-scale run.
const SPAN_CAPACITY: usize = 1 << 20;

/// Fault intensity for the faulted legs, actions per minute.
const FAULTS_PER_MINUTE: f64 = 6.0;

/// One traced run: a scheduler, with or without the fault plan.
#[derive(Debug, Clone, Serialize)]
pub struct TraceLeg {
    /// Scheduler label.
    pub scheduler: String,
    /// Whether the seeded fault plan was replayed against the run.
    pub faulted: bool,
    /// The run report.
    pub report: RunReport,
    /// Per-stage latency breakdown rows, sorted by stage name.
    pub breakdown: Vec<StageBreakdownRow>,
    /// Number of spans retained in the ring.
    pub spans: usize,
    /// Number of spans the ring evicted (0 in the shipped configs).
    pub dropped: u64,
    /// The Chrome-trace JSON for this leg.
    pub chrome_json: String,
}

/// The full study: `DNN_SCHEDULERS × {clean, faulted}`, in that order.
#[derive(Debug, Clone, Serialize)]
pub struct TraceStudy {
    /// Legs: all clean runs first, then all faulted runs.
    pub legs: Vec<TraceLeg>,
}

impl TraceStudy {
    /// Run the study bounded by the host's available parallelism.
    pub fn run(workload: &DnnWorkloadConfig, seed: u64) -> TraceStudy {
        Self::run_threads(workload, seed, crate::parallel::default_threads())
    }

    /// [`TraceStudy::run`] on an explicit worker count. Legs reassemble in
    /// submission order, so the study is identical at every thread count.
    pub fn run_threads(workload: &DnnWorkloadConfig, seed: u64, threads: usize) -> TraceStudy {
        let mut jobs: Vec<Box<dyn FnOnce() -> TraceLeg + Send>> = Vec::new();
        for faulted in [false, true] {
            for name in DNN_SCHEDULERS {
                let workload = *workload;
                jobs.push(Box::new(move || run_leg(name, faulted, &workload, seed)));
            }
        }
        TraceStudy { legs: crate::parallel::run_jobs(jobs, threads) }
    }
}

fn run_leg(name: &str, faulted: bool, workload: &DnnWorkloadConfig, seed: u64) -> TraceLeg {
    let plan = if faulted {
        gen::generate(&GenConfig {
            seed,
            nodes: knots_sim::config::DNN_SIM_GPUS,
            duration: workload.duration,
            faults_per_minute: FAULTS_PER_MINUTE,
        })
    } else {
        FaultPlan::empty()
    };
    let tracer = Tracer::bounded(SPAN_CAPACITY);
    let report = run_dnn_traced(
        scheduler_by_name(name).expect("known scheduler"),
        workload,
        Obs::disabled(),
        plan,
        tracer.clone(),
    );
    TraceLeg {
        scheduler: name.to_string(),
        faulted,
        report,
        breakdown: breakdown(&tracer.stage_histograms()),
        spans: tracer.len(),
        dropped: tracer.dropped(),
        chrome_json: chrome::export(&tracer.spans()),
    }
}

/// File-name-safe slug for a leg's Chrome trace
/// (`trace_cbp-pp_faults.json`).
pub fn leg_slug(leg: &TraceLeg) -> String {
    let sched: String = leg
        .scheduler
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect();
    format!("trace_{sched}_{}", if leg.faulted { "faults" } else { "clean" })
}

/// The per-stage latency breakdown table across every leg, durations in
/// sim-time milliseconds.
pub fn breakdown_table(study: &TraceStudy) -> Table {
    let mut t = Table::new(
        "Trace — per-stage latency breakdown (sim-time ms)",
        &["scheduler", "faults", "stage", "count", "p50", "p95", "p99", "mean"],
    );
    for leg in &study.legs {
        for row in &leg.breakdown {
            t.row(vec![
                leg.scheduler.clone(),
                if leg.faulted { "yes" } else { "no" }.to_string(),
                row.stage.clone(),
                row.count.to_string(),
                f(row.p50_us / 1e3, 2),
                f(row.p95_us / 1e3, 2),
                f(row.p99_us / 1e3, 2),
                f(row.mean_us / 1e3, 2),
            ]);
        }
    }
    t
}

/// Span-count summary per leg (spans retained, evicted, report digest
/// inputs), for the side table the subcommand prints.
pub fn spans_table(study: &TraceStudy) -> Table {
    let mut t = Table::new(
        "Trace — span volume per leg",
        &["scheduler", "faults", "spans", "evicted", "completed", "crashes"],
    );
    for leg in &study.legs {
        t.row(vec![
            leg.scheduler.clone(),
            if leg.faulted { "yes" } else { "no" }.to_string(),
            leg.spans.to_string(),
            leg.dropped.to_string(),
            leg.report.completed.to_string(),
            leg.report.crashes.to_string(),
        ]);
    }
    t
}

/// A stable digest over every leg's breakdown rows and Chrome trace bytes.
/// Two same-seed runs — at any thread count — must print the same value.
pub fn digest(study: &TraceStudy) -> String {
    let mut h = knots_analyzer::selfcheck::Fnv::new();
    for leg in &study.legs {
        h.write(leg.scheduler.as_bytes());
        h.write(&[u8::from(leg.faulted)]);
        for row in &leg.breakdown {
            h.write(row.stage.as_bytes());
            h.write(&row.count.to_le_bytes());
            h.write(&row.p50_us.to_bits().to_le_bytes());
            h.write(&row.p95_us.to_bits().to_le_bytes());
            h.write(&row.p99_us.to_bits().to_le_bytes());
            h.write(&row.mean_us.to_bits().to_le_bytes());
            h.write(&row.max_us.to_bits().to_le_bytes());
        }
        h.write(leg.chrome_json.as_bytes());
    }
    format!("{:016x}", h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_sim::time::SimDuration;

    fn tiny() -> DnnWorkloadConfig {
        DnnWorkloadConfig {
            dlt_jobs: 8,
            dli_tasks: 20,
            duration: SimDuration::from_secs(40),
            time_scale: 1.0 / 240.0,
            seed: 5,
        }
    }

    #[test]
    fn study_covers_every_scheduler_clean_and_faulted() {
        let study = TraceStudy::run(&tiny(), 42);
        assert_eq!(study.legs.len(), 8);
        assert_eq!(study.legs.iter().filter(|l| l.faulted).count(), 4);
        for leg in &study.legs {
            assert!(leg.spans > 0, "{}: no spans", leg.scheduler);
            assert_eq!(leg.dropped, 0, "{}: ring evicted", leg.scheduler);
            assert!(
                leg.breakdown.iter().any(|r| r.stage == "queued"),
                "{}: no queued stage",
                leg.scheduler
            );
            assert!(leg.chrome_json.starts_with("{\"traceEvents\":["));
        }
        let table = breakdown_table(&study).render();
        assert!(table.contains("queued"));
        assert!(table.contains("running"));
        assert!(leg_slug(&study.legs[3]).starts_with("trace_cbp-pp_"));
        assert_eq!(digest(&study).len(), 16);
    }
}
