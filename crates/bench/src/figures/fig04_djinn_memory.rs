//! Fig. 4 — memory footprint of DNN inference queries vs batch size,
//! including the TensorFlow-managed ("TF") earmarking bar that consumes
//! ~99% of device memory regardless of need.

use crate::render::{f, Table};
use knots_sim::node::GREEDY_EARMARK_FRAC;
use knots_sim::resources::GpuModel;
use knots_workloads::djinn::InferenceService;
use serde::Serialize;

/// One row: a batch size and each service's memory use as % of the device.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Inference batch size.
    pub batch: u32,
    /// `(service, % of device memory)` pairs.
    pub services: Vec<(String, f64)>,
    /// The TF default: fraction of device memory earmarked (constant).
    pub tf_managed_pct: f64,
}

/// Compute the figure for the paper's batch sweep 1–128.
pub fn run() -> Vec<Row> {
    let cap = GpuModel::P100.spec().mem_mb;
    [1u32, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|&batch| Row {
            batch,
            services: InferenceService::ALL
                .iter()
                .map(|s| (s.name().to_string(), s.mem_mb(batch) / cap * 100.0))
                .collect(),
            tf_managed_pct: GREEDY_EARMARK_FRAC * 100.0,
        })
        .collect()
}

/// Render.
pub fn table(rows: &[Row]) -> Table {
    let mut headers = vec!["batch"];
    let names: Vec<String> = rows[0].services.iter().map(|(n, _)| n.clone()).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    headers.extend(name_refs);
    headers.push("TF");
    let mut t =
        Table::new("Fig. 4 — % GPU memory used by inference queries vs batch size", &headers);
    for r in rows {
        let mut cells = vec![r.batch.to_string()];
        cells.extend(r.services.iter().map(|(_, v)| f(*v, 1)));
        cells.push(f(r.tf_managed_pct, 0));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig4_claims() {
        let rows = run();
        assert_eq!(rows.len(), 8);
        // Batch 1: most services below 10% of device memory.
        let small = rows[0].services.iter().filter(|(_, v)| *v < 10.0).count();
        assert!(small >= 5, "{small}/7 under 10% at batch 1");
        // Batch 128: all below 50%.
        assert!(rows[7].services.iter().all(|(_, v)| *v < 50.0));
        // The TF bar dwarfs actual demand.
        assert!(rows.iter().all(|r| r.tf_managed_pct > 95.0));
        // Monotone growth per service.
        for i in 0..rows[0].services.len() {
            for w in rows.windows(2) {
                assert!(w[1].services[i].1 >= w[0].services[i].1);
            }
        }
    }

    #[test]
    fn renders() {
        let t = table(&run());
        let s = t.render();
        assert!(s.contains("face") && s.contains("TF"));
    }
}
