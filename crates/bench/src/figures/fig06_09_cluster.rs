//! The ten-node cluster study behind Figs. 6, 7, 8 and 9: every cluster
//! scheduler run over every Table I app-mix. The same run reports feed the
//! QoS figure (10a) and the power figure (11), so the study is computed
//! once and shared.

use crate::render::{f, Table};
use knots_core::experiment::{
    run_mix_with_obs, scheduler_by_name, ExperimentConfig, CLUSTER_SCHEDULERS,
};
use knots_core::metrics::RunReport;
use knots_obs::Obs;
use knots_workloads::AppMix;
use serde::Serialize;

/// All reports of the cluster study, indexed `[mix][scheduler]`.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterStudy {
    /// The mixes, in paper order.
    pub mixes: Vec<String>,
    /// `reports[mix_idx][sched_idx]` in [`CLUSTER_SCHEDULERS`] order.
    pub reports: Vec<Vec<RunReport>>,
}

impl ClusterStudy {
    /// Run the full 3×4 grid. Runs are parallelized across scheduler/mix
    /// pairs with scoped threads (each run is single-threaded at 10 nodes),
    /// bounded by the host's available parallelism.
    pub fn run(cfg: &ExperimentConfig) -> ClusterStudy {
        Self::run_with_obs(cfg, &Obs::disabled())
    }

    /// [`ClusterStudy::run`] with a shared observability bundle: every run
    /// in the grid records into the same trace/metrics (the bundle clones
    /// are `Arc` handles, so concurrent runs interleave safely).
    pub fn run_with_obs(cfg: &ExperimentConfig, obs: &Obs) -> ClusterStudy {
        Self::run_with_obs_threads(cfg, obs, crate::parallel::default_threads())
    }

    /// [`ClusterStudy::run_with_obs`] on an explicit worker count.
    ///
    /// `threads == 1` runs the grid serially on the calling thread (the
    /// perf harness' baseline). Every leg is deterministic from the config
    /// seed and results are reassembled in grid order, so the study is
    /// byte-identical at every thread count.
    pub fn run_with_obs_threads(cfg: &ExperimentConfig, obs: &Obs, threads: usize) -> ClusterStudy {
        let jobs: Vec<_> = AppMix::ALL
            .iter()
            .flat_map(|m| CLUSTER_SCHEDULERS.iter().map(move |s| (*m, *s)))
            .map(|(mix, name)| {
                let cfg = *cfg;
                let obs = obs.clone();
                move || {
                    run_mix_with_obs(
                        scheduler_by_name(name).expect("known scheduler"),
                        mix,
                        &cfg,
                        obs,
                    )
                }
            })
            .collect();
        let results: Vec<RunReport> = crate::parallel::run_jobs(jobs, threads);
        let mut reports = Vec::new();
        for (i, _mix) in AppMix::ALL.iter().enumerate() {
            let base = i * CLUSTER_SCHEDULERS.len();
            reports.push(results[base..base + CLUSTER_SCHEDULERS.len()].to_vec());
        }
        ClusterStudy { mixes: AppMix::ALL.iter().map(|m| m.to_string()).collect(), reports }
    }

    /// The report for a mix/scheduler pair.
    pub fn report(&self, mix_idx: usize, scheduler: &str) -> &RunReport {
        let s = CLUSTER_SCHEDULERS.iter().position(|n| *n == scheduler).expect("known scheduler");
        &self.reports[mix_idx][s]
    }
}

/// Fig. 6 (Res-Ag) / Fig. 8 (CBP+PP): per-node 50/90/99/max utilization.
pub fn per_node_table(study: &ClusterStudy, mix_idx: usize, scheduler: &str, fig: &str) -> Table {
    let r = study.report(mix_idx, scheduler);
    let mut t = Table::new(
        format!("{fig} — per-node GPU utilization, {} under {scheduler}", study.mixes[mix_idx]),
        &["node", "p50%", "p90%", "p99%", "max%"],
    );
    for (i, (p50, p90, p99, max)) in r.node_quartets().iter().enumerate() {
        t.row(vec![(i + 1).to_string(), f(*p50, 1), f(*p90, 1), f(*p99, 1), f(*max, 1)]);
    }
    t
}

/// Fig. 7: per-node COV (sorted) for each mix under Res-Ag.
pub fn fig7_table(study: &ClusterStudy) -> Table {
    let mut t = Table::new(
        "Fig. 7 — per-node COV of GPU utilization under Res-Ag (sorted)",
        &["node rank", "App-Mix-1", "App-Mix-2", "App-Mix-3"],
    );
    let covs: Vec<Vec<f64>> =
        (0..3).map(|m| study.report(m, "Res-Ag").node_covs_sorted()).collect();
    let rows = covs.iter().map(|c| c.len()).max().unwrap_or(0);
    for i in 0..rows {
        let cell = |m: usize| covs[m].get(i).map(|v| f(*v, 2)).unwrap_or_default();
        t.row(vec![(i + 1).to_string(), cell(0), cell(1), cell(2)]);
    }
    t
}

/// Fig. 9: cluster-wide utilization quartet per scheduler per mix
/// (active-GPU pooled samples).
pub fn fig9_table(study: &ClusterStudy, mix_idx: usize) -> Table {
    let mut t = Table::new(
        format!("Fig. 9 — cluster-wide GPU utilization, {}", study.mixes[mix_idx]),
        &["scheduler", "p50%", "p90%", "p99%", "max%", "mean%"],
    );
    for name in ["CBP+PP", "CBP", "Res-Ag"] {
        let r = study.report(mix_idx, name);
        let (p50, p90, p99, max) = r.active_quartet();
        t.row(vec![
            name.to_string(),
            f(p50, 1),
            f(p90, 1),
            f(p99, 1),
            f(max, 1),
            f(r.mean_active_util(), 1),
        ]);
    }
    t
}

/// Fig. 11b: pairwise COV of node loads under CBP+PP for a mix.
pub fn fig11b_table(study: &ClusterStudy, mix_idx: usize) -> Table {
    let r = study.report(mix_idx, "CBP+PP");
    let m = r.pairwise_cov();
    let n = m.len();
    let mut headers: Vec<String> = vec!["".into()];
    headers.extend((1..=n).map(|i| i.to_string()));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        format!("Fig. 11b — pairwise COV of node loads under CBP+PP, {}", study.mixes[mix_idx]),
        &hrefs,
    );
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let mut cells = vec![(i + 1).to_string()];
        for j in 0..n {
            cells.push(if j > i { f(m[i][j], 2) } else { String::new() });
        }
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_sim::time::SimDuration;

    /// A fast, small instance of the whole study (smoke test).
    #[test]
    fn study_grid_runs() {
        let cfg = ExperimentConfig { duration: SimDuration::from_secs(20), ..Default::default() };
        let study = ClusterStudy::run(&cfg);
        assert_eq!(study.reports.len(), 3);
        assert_eq!(study.reports[0].len(), 4);
        assert_eq!(study.report(0, "Uniform").scheduler, "Uniform");
        // Render each table once.
        assert!(per_node_table(&study, 0, "Res-Ag", "Fig. 6").render().contains("node"));
        assert!(fig7_table(&study).render().contains("App-Mix-3"));
        assert!(fig9_table(&study, 1).render().contains("CBP+PP"));
        assert!(fig11b_table(&study, 0).render().contains("1"));
    }
}
