//! Fig. 1 — normalized energy efficiency vs device utilization for the
//! P100 GPU and two CPU generations. The GPU curve must be monotonically
//! increasing (peak efficiency at 100%), the CPUs must peak in the 60–80%
//! zone above 1.0.

use crate::render::{f, Table};
use knots_sim::power::{cpu_energy_efficiency, gpu_energy_efficiency, CpuGeneration};
use knots_sim::resources::GpuModel;
use serde::Serialize;

/// One row of the Fig. 1 series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Row {
    /// Device utilization, percent.
    pub util_pct: f64,
    /// GPU normalized energy efficiency.
    pub gpu: f64,
    /// Sandy Bridge normalized energy efficiency.
    pub sandybridge: f64,
    /// Westmere normalized energy efficiency.
    pub westmere: f64,
}

/// Compute the figure's series at 10% steps (as plotted).
pub fn run() -> Vec<Row> {
    let spec = GpuModel::P100.spec();
    (1..=10)
        .map(|i| {
            let u = i as f64 / 10.0;
            Row {
                util_pct: u * 100.0,
                gpu: gpu_energy_efficiency(&spec, u),
                sandybridge: cpu_energy_efficiency(CpuGeneration::SandyBridge, u),
                westmere: cpu_energy_efficiency(CpuGeneration::Westmere, u),
            }
        })
        .collect()
}

/// Render as a table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Fig. 1 — Energy efficiency vs utilization (normalized to EE at 100%)",
        &["util%", "GPU", "Intel-SandyBridge", "Intel-Westmere"],
    );
    for r in rows {
        t.row(vec![f(r.util_pct, 0), f(r.gpu, 3), f(r.sandybridge, 3), f(r.westmere, 3)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_fig1_shape() {
        let rows = run();
        assert_eq!(rows.len(), 10);
        // GPU strictly increasing, ending at 1.0.
        for w in rows.windows(2) {
            assert!(w[1].gpu > w[0].gpu);
        }
        assert!((rows[9].gpu - 1.0).abs() < 1e-9);
        // CPUs exceed 1.0 somewhere in the proportionality zone and return
        // to 1.0 at full load.
        assert!(rows.iter().any(|r| r.sandybridge > 1.0));
        assert!((rows[9].sandybridge - 1.0).abs() < 1e-9);
        // Low-utilization zone: GPU EE is low (the "low energy
        // proportionality zone" of the figure).
        assert!(rows[0].gpu < 0.5);
    }
}
