//! Fig. 12 + Table IV — the §V-C deep-learning scheduler comparison on the
//! 256-GPU simulated cluster: JCT CDF (12a), DLI QoS violations per hour
//! (12b) and the Table IV JCT ratios normalized to CBP+PP.

use crate::render::{f, Table};
use knots_core::experiment::{run_dnn, scheduler_by_name, DNN_SCHEDULERS};
use knots_core::metrics::RunReport;
use knots_workloads::dnn::DnnWorkloadConfig;
use serde::Serialize;

/// The study: one report per DNN scheduler.
#[derive(Debug, Clone, Serialize)]
pub struct DnnStudy {
    /// Reports in [`DNN_SCHEDULERS`] order.
    pub reports: Vec<RunReport>,
    /// The time compression the workload ran at.
    pub time_scale: f64,
}

impl DnnStudy {
    /// Run the four schedulers over the workload in parallel, bounded by
    /// the host's available parallelism.
    pub fn run(workload: &DnnWorkloadConfig) -> DnnStudy {
        Self::run_threads(workload, crate::parallel::default_threads())
    }

    /// [`DnnStudy::run`] on an explicit worker count. Each leg is
    /// deterministic from the workload seed and results are reassembled in
    /// [`DNN_SCHEDULERS`] order, so the study is identical at every thread
    /// count (`threads == 1` is the serial baseline).
    pub fn run_threads(workload: &DnnWorkloadConfig, threads: usize) -> DnnStudy {
        let jobs: Vec<_> = DNN_SCHEDULERS
            .iter()
            .map(|name| {
                let workload = *workload;
                move || run_dnn(scheduler_by_name(name).expect("known"), &workload)
            })
            .collect();
        let reports = crate::parallel::run_jobs(jobs, threads);
        DnnStudy { reports, time_scale: workload.time_scale }
    }

    /// The CBP+PP baseline report.
    pub fn baseline(&self) -> &RunReport {
        self.reports.iter().find(|r| r.scheduler == "CBP+PP").expect("CBP+PP in study")
    }
}

/// Table IV — JCT ratios normalized to CBP+PP.
pub fn table4(study: &DnnStudy) -> Table {
    let base = study.baseline().all_jct;
    let mut t = Table::new(
        "Table IV — JCT improvements normalized to CBP+PP",
        &["scheduler", "average", "median", "99%", "completed", "preempts", "migrations"],
    );
    for r in &study.reports {
        let (avg, med, p99) = r.all_jct.normalized_to(&base);
        t.row(vec![
            r.scheduler.clone(),
            format!("{avg:.2}x"),
            format!("{med:.2}x"),
            format!("{p99:.2}x"),
            format!("{}/{}", r.completed, r.submitted),
            r.preemptions.to_string(),
            r.migrations.to_string(),
        ]);
    }
    t
}

/// Fig. 12a — the JCT CDF per scheduler, in *uncompressed* hours.
pub fn fig12a_table(study: &DnnStudy, points: usize) -> Table {
    let mut headers = vec!["JCT(h)".to_string()];
    headers.extend(study.reports.iter().map(|r| r.scheduler.clone()));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Fig. 12a — fraction of jobs completed within JCT", &hrefs);

    // Common JCT grid from the slowest scheduler's max.
    let to_hours = 1.0 / 3600.0 / study.time_scale;
    let max_jct = study.reports.iter().map(|r| r.all_jct.max).fold(0.0f64, f64::max) * to_hours;

    for i in 0..=points {
        let x = i as f64 * max_jct / points as f64;
        let mut cells = vec![f(x, 1)];
        for r in &study.reports {
            // Fraction of completed jobs with JCT <= x is derived from the
            // stored JctStats' underlying population via the report's
            // cached quantiles; RunReport keeps only the summary, so this
            // interpolates over (median, p99, max).
            let frac = cdf_from_stats(r, x / to_hours);
            cells.push(f(frac, 2));
        }
        t.row(cells);
    }
    t
}

/// Approximate CDF from the summary statistics (0 → median → p99 → max).
fn cdf_from_stats(r: &RunReport, x_secs: f64) -> f64 {
    let s = r.all_jct;
    if s.count == 0 || x_secs <= 0.0 {
        return 0.0;
    }
    let pts = [(0.0, 0.0), (s.median, 0.5), (s.p99, 0.99), (s.max, 1.0)];
    for w in pts.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x_secs <= x1 {
            if x1 - x0 < 1e-12 {
                return y1;
            }
            return y0 + (y1 - y0) * (x_secs - x0) / (x1 - x0);
        }
    }
    1.0
}

/// Fig. 12b — DLI QoS violations per (uncompressed) hour.
pub fn fig12b_table(study: &DnnStudy) -> Table {
    let mut t = Table::new(
        "Fig. 12b — average QoS violations of DL inference queries per hour",
        &["scheduler", "viol/hr", "violations", "queries", "p99 latency (ms)"],
    );
    for r in &study.reports {
        let hours = r.duration.as_secs_f64() / 3600.0 / study.time_scale;
        t.row(vec![
            r.scheduler.clone(),
            f(r.lc_violations as f64 / hours.max(1e-9), 2),
            r.lc_violations.to_string(),
            r.lc_completed.to_string(),
            f(r.lc_latency.p99 * 1000.0, 0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_core::metrics::JctStats;
    use knots_sim::time::SimDuration;

    fn dummy_report(median: f64, p99: f64, max: f64) -> RunReport {
        RunReport {
            scheduler: "X".into(),
            duration: SimDuration::from_secs(100),
            node_util_series: vec![],
            active_util_samples: vec![],
            submitted: 10,
            completed: 10,
            lc_completed: 5,
            lc_violations: 1,
            batch_jct: JctStats::default(),
            lc_latency: JctStats::default(),
            all_jct: JctStats { count: 10, avg: median, median, p99, max },
            energy_joules: 1.0,
            crashes: 0,
            preemptions: 0,
            migrations: 0,
            skipped_actions: 0,
            skipped_breakdown: vec![],
            phase_timings: vec![],
            faults: knots_core::FaultStats::default(),
            events_processed: 0,
            events_per_sim_second: 0.0,
            recovery: knots_core::RecoveryStats::default(),
        }
    }

    #[test]
    fn cdf_interpolation_is_monotone() {
        let r = dummy_report(10.0, 50.0, 80.0);
        let mut prev = 0.0;
        for i in 0..100 {
            let v = cdf_from_stats(&r, i as f64);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
        assert!((cdf_from_stats(&r, 10.0) - 0.5).abs() < 1e-9);
        assert!((cdf_from_stats(&r, 1000.0) - 1.0).abs() < 1e-9);
        assert_eq!(cdf_from_stats(&r, 0.0), 0.0);
    }

    #[test]
    fn smoke_study_tables_render() {
        let workload = DnnWorkloadConfig {
            dlt_jobs: 12,
            dli_tasks: 30,
            duration: SimDuration::from_secs(60),
            time_scale: 1.0 / 240.0,
            seed: 5,
        };
        let study = DnnStudy::run(&workload);
        assert_eq!(study.reports.len(), 4);
        assert!(table4(&study).render().contains("CBP+PP"));
        assert!(fig12b_table(&study).render().contains("viol/hr"));
        assert!(fig12a_table(&study, 10).render().contains("JCT(h)"));
    }
}
