//! Fig. 10b — prediction accuracy vs heartbeat interval.
//!
//! §VI-D: the aggregator's sampling interval is swept from 1000 ms down to
//! 0.1 ms; CBP+PP's ARIMA accuracy rises from 36% to 84% at 1 ms and then
//! *drops* at 0.1 ms, while Theil-Sen / SGD / MLP stay "similar or worse
//! despite their high run-time complexity".
//!
//! Methodology reproduced here:
//!
//! * a node-utilization signal with the workload's real phase structure
//!   (two staggered Rodinia-style batch profiles plus sub-second inference
//!   spikes) is sampled at each heartbeat — coarse heartbeats alias the
//!   phase changes away;
//! * each sample carries measurement noise whose standard deviation shrinks
//!   with the averaging interval (`σ(h) = σ₀·(dt₀/h)^0.25` — a counter read
//!   over a longer window is smoother, though not white-noise-fast because
//!   NVML jitter is partly quantization), so ultra-fine sampling trains the
//!   models on noise: the §VI-D "over-fitting of the model from the
//!   training data" that makes accuracy *drop* past 1 ms;
//! * the model is refitted on the trailing 5 s window at every origin and
//!   asked for the next sample (the Eq. 3 recurrence), exactly the
//!   [`AccuracyConfig::paper`] setup.

use crate::render::{f, pct, Table};
use knots_forecast::accuracy::{walk_forward, AccuracyConfig, AccuracyReport};
use knots_forecast::arima::ArimaRegressor;
use knots_forecast::regressors::{Mlp, Regressor, SgdLinear, TheilSen};
use knots_workloads::distributions::normal;
use knots_workloads::rodinia::RodiniaApp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct Fig10bConfig {
    /// Heartbeat intervals to evaluate, microseconds.
    pub heartbeats_us: [u64; 6],
    /// Noise std at the 0.1 ms base interval, utilization percentage points.
    pub sigma0_pct: f64,
    /// Base measurement interval, microseconds.
    pub dt0_us: u64,
    /// Inference-spike arrival rate, per second.
    pub spike_rate: f64,
    /// Spike duration range, seconds.
    pub spike_dur: (f64, f64),
    /// RNG seed.
    pub seed: u64,
    /// Target number of walk-forward evaluations per point.
    pub evaluations: usize,
}

impl Default for Fig10bConfig {
    fn default() -> Self {
        Fig10bConfig {
            heartbeats_us: [1_000_000, 500_000, 100_000, 10_000, 1_000, 100],
            sigma0_pct: 9.0,
            dt0_us: 100,
            spike_rate: 6.0,
            spike_dur: (0.002, 0.012),
            seed: 17,
            evaluations: 120,
        }
    }
}

/// One sweep point for one model.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Heartbeat interval, ms.
    pub heartbeat_ms: f64,
    /// Model label.
    pub model: String,
    /// Accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Forecast RMSE.
    pub rmse: f64,
    /// Evaluations performed.
    pub evaluated: usize,
}

/// The deterministic *clean* node-utilization signal, percent, at time `t`
/// seconds: two staggered batch applications plus inference spikes drawn
/// from a seeded schedule.
pub struct UtilSignal {
    app_a: knots_sim::profile::ResourceProfile,
    app_b: knots_sim::profile::ResourceProfile,
    period_a: f64,
    period_b: f64,
    /// Sorted spike start times, seconds.
    spikes: Vec<(f64, f64)>, // (start, duration)
}

impl UtilSignal {
    /// Build the signal for a trace of `duration_secs`.
    pub fn new(duration_secs: f64, spike_rate: f64, seed: u64) -> Self {
        Self::with_durations(duration_secs, spike_rate, (0.030, 0.150), seed)
    }

    /// Build with an explicit spike-duration range.
    pub fn with_durations(
        duration_secs: f64,
        spike_rate: f64,
        spike_dur: (f64, f64),
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spikes = Vec::new();
        if spike_rate > 0.0 {
            let mut t = 0.0;
            while t < duration_secs {
                t += knots_workloads::distributions::exponential(&mut rng, spike_rate);
                spikes.push((t, rng.gen_range(spike_dur.0..spike_dur.1)));
            }
        }
        let app_a = RodiniaApp::Kmeans.profile(1.0);
        let app_b = RodiniaApp::Lud.profile(1.0);
        let period_a = app_a.total_work();
        let period_b = app_b.total_work();
        UtilSignal { app_a, app_b, period_a, period_b, spikes }
    }

    /// Clean utilization (percent) at `t` seconds.
    pub fn at(&self, t: f64) -> f64 {
        let a = self.app_a.demand_at(t % self.period_a).sm_frac;
        // Stagger the second app by a third of its period.
        let b = self.app_b.demand_at((t + self.period_b / 3.0) % self.period_b).sm_frac;
        let spike = self
            .spikes
            .binary_search_by(|(s, _)| s.total_cmp(&t))
            .map(|_| true)
            .unwrap_or_else(|i| i > 0 && t < self.spikes[i - 1].0 + self.spikes[i - 1].1);
        let s = if spike { 0.8 } else { 0.0 };
        ((a + b + s) * 100.0).min(100.0)
    }
}

/// Sample the signal at heartbeat `h_us` with interval-scaled noise.
pub fn sample_series(
    signal: &UtilSignal,
    duration_secs: f64,
    h_us: u64,
    cfg: &Fig10bConfig,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ h_us);
    let h_secs = h_us as f64 / 1e6;
    let n = (duration_secs / h_secs) as usize;
    let sigma = cfg.sigma0_pct * (cfg.dt0_us as f64 / h_us as f64).powf(0.25);
    (0..n)
        .map(|i| {
            let t = i as f64 * h_secs;
            // The sample is the mean over the interval: a hardware counter
            // integrates continuously, so coarse heartbeats need enough
            // sub-samples to genuinely average the sub-interval structure.
            let subs = (h_us / 250).clamp(4, 64) as usize;
            let clean: f64 = (0..subs)
                .map(|k| signal.at(t + h_secs * (k as f64 + 0.5) / subs as f64))
                .sum::<f64>()
                / subs as f64;
            (clean + normal(&mut rng, 0.0, sigma)).clamp(0.0, 100.0)
        })
        .collect()
}

/// Run the full sweep.
pub fn run(cfg: &Fig10bConfig) -> Vec<Point> {
    let mut out = Vec::new();
    for &h_us in &cfg.heartbeats_us {
        let acc_cfg = AccuracyConfig::paper(h_us);
        // Trace long enough for `evaluations` strided origins.
        let stride = (acc_cfg.window / 4).clamp(1, 2_000);
        let needed = acc_cfg.window + acc_cfg.horizon + cfg.evaluations * stride;
        let duration_secs = needed as f64 * h_us as f64 / 1e6 + 1.0;
        let signal =
            UtilSignal::with_durations(duration_secs, cfg.spike_rate, cfg.spike_dur, cfg.seed);
        let series = sample_series(&signal, duration_secs, h_us, cfg);

        // The expensive models train on a capped trailing window — the
        // "profiling overhead" the paper cites makes anything more
        // impractical at millisecond heartbeats.
        let cap = |n: usize| AccuracyConfig { window: acc_cfg.window.min(n), stride, ..acc_cfg };
        let mut models: Vec<(Box<dyn Regressor>, AccuracyConfig)> = vec![
            (Box::new(ArimaRegressor::default()), AccuracyConfig { stride, ..acc_cfg }),
            (Box::new(TheilSen::default()), cap(400)),
            (Box::new(SgdLinear::default()), cap(2_000)),
            (Box::new(Mlp::default()), cap(1_200)),
        ];
        for (model, mcfg) in models.iter_mut() {
            let rep: AccuracyReport = walk_forward(&series, model.as_mut(), mcfg);
            out.push(Point {
                heartbeat_ms: h_us as f64 / 1_000.0,
                model: model.name().to_string(),
                accuracy: rep.accuracy,
                rmse: rep.rmse,
                evaluated: rep.evaluated,
            });
        }
    }
    out
}

/// Render as one table (models as columns).
pub fn table(points: &[Point]) -> Table {
    let models: Vec<String> = {
        let mut v = Vec::new();
        for p in points {
            if !v.contains(&p.model) {
                v.push(p.model.clone());
            }
        }
        v
    };
    let mut headers = vec!["heartbeat"];
    let refs: Vec<&str> = models.iter().map(|s| s.as_str()).collect();
    headers.extend(refs);
    let mut t = Table::new("Fig. 10b — prediction accuracy vs heartbeat interval", &headers);
    let mut hbs: Vec<f64> = Vec::new();
    for p in points {
        if !hbs.contains(&p.heartbeat_ms) {
            hbs.push(p.heartbeat_ms);
        }
    }
    for hb in hbs {
        let mut cells = vec![if hb >= 1.0 { format!("{hb:.0}ms") } else { format!("{hb:.1}ms") }];
        for m in &models {
            let p = points
                .iter()
                .find(|p| p.heartbeat_ms == hb && &p.model == m)
                .expect("point exists");
            cells.push(pct(p.accuracy * 100.0));
        }
        t.row(cells);
    }
    let _ = f(0.0, 0);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_is_deterministic_and_bounded() {
        let s1 = UtilSignal::new(30.0, 1.0, 3);
        let s2 = UtilSignal::new(30.0, 1.0, 3);
        for i in 0..300 {
            let t = i as f64 * 0.1;
            let v = s1.at(t);
            assert!((0.0..=100.0).contains(&v));
            assert_eq!(v, s2.at(t));
        }
    }

    #[test]
    fn sampling_noise_shrinks_with_interval() {
        // Compare the *residual* against the known clean signal (the
        // signal itself moves more per coarse step, so raw sample-to-sample
        // roughness would not isolate the measurement noise).
        let cfg = Fig10bConfig::default();
        let signal = UtilSignal::new(20.0, 0.0, 5); // no spikes
        let resid_std = |h_us: u64| {
            let series = sample_series(&signal, 20.0, h_us, &cfg);
            let h_secs = h_us as f64 / 1e6;
            let subs = (h_us / 250).clamp(4, 64) as usize;
            let residuals: Vec<f64> = series
                .iter()
                .enumerate()
                .map(|(i, &y)| {
                    let t = i as f64 * h_secs;
                    let clean: f64 = (0..subs)
                        .map(|k| signal.at(t + h_secs * (k as f64 + 0.5) / subs as f64))
                        .sum::<f64>()
                        / subs as f64;
                    y - clean
                })
                .collect();
            knots_forecast::stats::stddev(&residuals)
        };
        let fine = resid_std(100);
        let coarse = resid_std(100_000);
        assert!(fine > 3.0 * coarse, "fine noise {fine} vs coarse {coarse}");
    }

    /// The headline Fig. 10b shape. This doubles as the regression test for
    /// the experiment itself (marked ignored in normal runs: ~seconds).
    #[test]
    #[ignore = "several seconds; run with --ignored or via the experiments binary"]
    fn arima_accuracy_peaks_at_1ms() {
        let points = run(&Fig10bConfig::default());
        let arima: Vec<&Point> = points.iter().filter(|p| p.model.contains("ARIMA")).collect();
        let acc = |ms: f64| arima.iter().find(|p| p.heartbeat_ms == ms).unwrap().accuracy;
        assert!(acc(1000.0) < acc(1.0), "coarse {} fine {}", acc(1000.0), acc(1.0));
        assert!(acc(0.1) < acc(1.0), "overfit drop: {} vs {}", acc(0.1), acc(1.0));
        assert!(acc(1.0) > 0.6, "peak accuracy {}", acc(1.0));
    }
}
