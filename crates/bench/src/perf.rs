//! The `experiments perf` harness — a deterministic performance benchmark
//! of the decision loop and the figure sweeps.
//!
//! Three sections, serialized to `BENCH_<pr>.json` at the repo root:
//!
//! 1. **Microbenchmarks** — pairwise Spearman matrices, one-pass vs naive
//!    ACF, cache-mediated vs direct Spearman, and a full `schedule_round`
//!    (via a short `run_mix`, whose per-phase timings come from the obs
//!    layer's `PhaseTimers`).
//! 2. **Sweep wall times** — the cluster and DNN figure studies at one
//!    worker thread (the serial baseline) and at `--threads N`, with the
//!    combined report digest of each leg recorded so the JSON itself proves
//!    the parallel sweep made the *same decisions*.
//! 3. **Loop-mode A/B** (`events`) — the same run under the naive
//!    per-tick oracle, the span calendar and the continuous-time event
//!    queue; all three digests must match bit for bit, and the recorded
//!    speedups quantify what skipping dead ticks buys.
//! 4. **Self-check digests** — the analyzer's dynamic determinism legs
//!    (`knots-analyzer check --self-check`), replayed here so a BENCH file
//!    from before an optimization can be diffed against one from after.
//! 5. **Analyzer wall time** — one full scope-aware `check_root` over the
//!    workspace, recording file count, diagnostic count (0 on a clean
//!    tree) and wall milliseconds, so lint-pass regressions show up in the
//!    same report as decision-loop regressions.
//!
//! All input series are seeded-LCG generated; nothing in the report depends
//! on host entropy. Wall-clock numbers of course vary by machine — the
//! `host` block records the core count they were taken on.

use crate::figures::fig06_09_cluster::ClusterStudy;
use crate::figures::fig12_dnn::DnnStudy;
use knots_analyzer::selfcheck::{self, report_digest, Fnv};
use knots_core::config::LoopMode;
use knots_core::experiment::{scheduler_by_name, ExperimentConfig};
use knots_forecast::autocorr::{acf, autocorrelation};
use knots_forecast::spearman::{correlation_matrix, spearman};
use knots_obs::Obs;
use knots_sched::StatsCache;
use knots_sim::ids::PodId;
use knots_sim::time::SimDuration;
use knots_workloads::dnn::DnnWorkloadConfig;
use knots_workloads::AppMix;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// Shrink iteration counts and sweep durations for CI smoke runs.
    pub quick: bool,
    /// Worker threads for the parallel sweep legs.
    pub threads: usize,
    /// Seed for the sweep workloads.
    pub seed: u64,
}

/// Machine metadata the wall-clock numbers were taken on.
#[derive(Debug, Clone, Serialize)]
pub struct HostInfo {
    /// `std::thread::available_parallelism()` (1 when unknown).
    pub available_parallelism: usize,
}

/// One microbenchmark result.
#[derive(Debug, Clone, Serialize)]
pub struct MicroBench {
    /// Benchmark label.
    pub name: String,
    /// Iterations timed.
    pub iters: u64,
    /// Mean microseconds per iteration.
    pub per_iter_us: f64,
    /// What one iteration does.
    pub note: String,
}

/// Wall time of one figure sweep at one thread count.
#[derive(Debug, Clone, Serialize)]
pub struct SweepTiming {
    /// Sweep label (`cluster` / `dnn`).
    pub name: String,
    /// Worker threads used.
    pub threads: usize,
    /// Wall time, milliseconds.
    pub wall_ms: f64,
    /// Combined FNV digest (hex) of every leg's report digest, in grid
    /// order — equal across thread counts iff the decisions were identical.
    pub digest: String,
    /// Speedup vs the serial (threads = 1) leg of the same sweep; `None`
    /// for the serial leg itself.
    pub speedup_vs_serial: Option<f64>,
}

/// Loop-mode A/B: the same run under all three control loops — the naive
/// per-tick oracle, the span calendar, and the continuous-time event
/// queue. All three report digests must agree bit for bit: the speedups
/// are only real if the decisions are unchanged.
#[derive(Debug, Clone, Serialize)]
pub struct EventsBench {
    /// Leg label (scheduler + timing shape).
    pub name: String,
    /// Wall time with `naive_ticking: true`, milliseconds.
    pub naive_wall_ms: f64,
    /// Wall time with the span calendar (`LoopMode::Calendar`).
    pub calendar_wall_ms: f64,
    /// Wall time with the event queue (`LoopMode::EventQueue`).
    pub event_wall_ms: f64,
    /// `naive_wall_ms / calendar_wall_ms`.
    pub calendar_speedup: f64,
    /// `naive_wall_ms / event_wall_ms`.
    pub event_speedup: f64,
    /// Control-loop iterations the event queue executed (its "step"
    /// phase count).
    pub steps_taken: u64,
    /// Ticks the oracle iterated (the naive leg's "step" phase count).
    pub ticks_total: u64,
    /// Dead iterations the event queue never ran: `ticks_total -
    /// steps_taken`.
    pub ticks_skipped: u64,
    /// Calendar events the event-queue leg popped and handled.
    pub events_processed: u64,
    /// All three report digests agreed bit for bit.
    pub digests_match: bool,
}

/// One analyzer self-check leg with its digests rendered as hex.
#[derive(Debug, Clone, Serialize)]
pub struct SelfCheckLeg {
    /// Scheduler label.
    pub scheduler: String,
    /// First pinned run.
    pub digest_a: String,
    /// Identically-seeded second run.
    pub digest_b: String,
    /// Run with observability attached.
    pub digest_obs: String,
    /// All three agreed.
    pub ok: bool,
}

/// One full analyzer pass over the workspace, timed.
#[derive(Debug, Clone, Serialize)]
pub struct AnalyzeBench {
    /// Rust files discovered and scanned.
    pub files: usize,
    /// Diagnostics produced (0 on a clean tree).
    pub diagnostics: usize,
    /// Wall time of `check_root` (lex, scope parse, guard tracking,
    /// workspace lock graph, suppression), milliseconds.
    pub wall_ms: f64,
}

/// The full `BENCH_*.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct PerfReport {
    /// `true` when `--quick` shrank the workloads.
    pub quick: bool,
    /// `--threads` used for the parallel sweep legs.
    pub threads: usize,
    /// Machine metadata.
    pub host: HostInfo,
    /// Decision-loop microbenchmarks.
    pub micro: Vec<MicroBench>,
    /// Figure-sweep wall times, serial and parallel.
    pub sweeps: Vec<SweepTiming>,
    /// Whether every sweep's parallel digest matched its serial digest.
    pub sweep_digests_match: bool,
    /// Three-way loop-mode A/B legs: naive vs calendar vs event queue.
    pub events: Vec<EventsBench>,
    /// Analyzer self-check legs.
    pub self_check: Vec<SelfCheckLeg>,
    /// Timed analyzer pass over the workspace.
    pub analyze: AnalyzeBench,
}

impl PerfReport {
    /// Did every determinism assertion in the report hold?
    pub fn ok(&self) -> bool {
        self.sweep_digests_match
            && self.events.iter().all(|c| c.digests_match)
            && self.self_check.iter().all(|l| l.ok)
            && self.analyze.diagnostics == 0
    }
}

struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn series(&mut self, len: usize, scale: f64) -> Vec<f64> {
        (0..len).map(|_| self.next_f64() * scale).collect()
    }
}

fn time_per_iter_us<R>(iters: u64, mut f: impl FnMut() -> R) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn micro_benches(cfg: &PerfConfig) -> Vec<MicroBench> {
    let iters = if cfg.quick { 20 } else { 200 };
    let mut rng = Lcg(cfg.seed ^ 0x5045_5246); // ^ "PERF"
    let mut out = Vec::new();

    // Pairwise Spearman matrix — the Fig. 2 heat-map inner loop.
    let series: Vec<Vec<f64>> = (0..24).map(|_| rng.series(64, 4_000.0)).collect();
    out.push(MicroBench {
        name: "spearman_pairwise_matrix".into(),
        iters,
        per_iter_us: time_per_iter_us(iters, || correlation_matrix(&series)),
        note: "24x24 Spearman matrix over 64-sample series".into(),
    });

    // One-pass ACF vs the naive per-lag recompute it replaced.
    let ys = rng.series(512, 16_000.0);
    out.push(MicroBench {
        name: "acf_one_pass".into(),
        iters,
        per_iter_us: time_per_iter_us(iters, || acf(&ys, 128)),
        note: "acf(512 samples, 128 lags), mean/denominator hoisted".into(),
    });
    out.push(MicroBench {
        name: "acf_naive_per_lag".into(),
        iters,
        per_iter_us: time_per_iter_us(iters, || {
            (1..=128).map(|k| autocorrelation(&ys, k)).collect::<Vec<f64>>()
        }),
        note: "the same 128 lags via per-lag autocorrelation() calls".into(),
    });

    // Cache-mediated vs direct Spearman over repeated (app, pod) pairs —
    // the CBP correlation-gate access pattern within one round.
    let reference = rng.series(64, 4_000.0);
    let pods: Vec<Vec<f64>> = (0..16).map(|_| rng.series(64, 4_000.0)).collect();
    out.push(MicroBench {
        name: "spearman_gate_uncached".into(),
        iters,
        per_iter_us: time_per_iter_us(iters, || {
            let mut acc = 0.0;
            for _ in 0..8 {
                for s in &pods {
                    acc += spearman(&reference, s);
                }
            }
            acc
        }),
        note: "16 resident pods x 8 candidate probes, full recompute".into(),
    });
    out.push(MicroBench {
        name: "spearman_gate_cached".into(),
        iters,
        per_iter_us: time_per_iter_us(iters, || {
            let cache = StatsCache::new();
            let mut acc = 0.0;
            for _ in 0..8 {
                for (i, s) in pods.iter().enumerate() {
                    acc += cache.spearman_suffix("app", &reference, PodId(i as u64), s);
                }
            }
            acc
        }),
        note: "same pattern through one round's StatsCache".into(),
    });

    // A full control loop: short run_mix, per-phase timings from the obs
    // layer fold the decide/snapshot/apply costs into the report.
    let run_cfg = ExperimentConfig {
        duration: SimDuration::from_secs(if cfg.quick { 20 } else { 60 }),
        seed: cfg.seed,
        ..Default::default()
    };
    let t0 = Instant::now();
    let report = knots_core::experiment::run_mix_with_obs(
        scheduler_by_name("CBP+PP").expect("known scheduler"),
        AppMix::Mix2,
        &run_cfg,
        Obs::disabled(),
    );
    let wall_us = t0.elapsed().as_secs_f64() * 1e6;
    let rounds: u64 = report
        .phase_timings
        .iter()
        .find(|p| p.phase == "decide")
        .map(|p| p.count)
        .unwrap_or(1)
        .max(1);
    out.push(MicroBench {
        name: "schedule_round_full_mix".into(),
        iters: rounds,
        per_iter_us: wall_us / rounds as f64,
        note: format!(
            "CBP+PP over Mix2, {}s sim; wall time / heartbeats",
            run_cfg.duration.as_secs_f64()
        ),
    });
    for p in &report.phase_timings {
        out.push(MicroBench {
            name: format!("phase_{}", p.phase),
            iters: p.count,
            per_iter_us: p.mean_us,
            note: format!("obs PhaseTimers mean (p99 {:.1} us)", p.p99_us),
        });
    }
    out
}

/// Fold every leg digest of a study into one hex string, in grid order.
fn combined_digest<'a>(
    reports: impl Iterator<Item = &'a knots_core::metrics::RunReport>,
) -> String {
    let mut h = Fnv::new();
    for r in reports {
        let d = report_digest(r);
        h.write(&d.to_le_bytes());
    }
    format!("{:016x}", h.finish())
}

fn sweep_benches(cfg: &PerfConfig) -> (Vec<SweepTiming>, bool) {
    let cluster_cfg = ExperimentConfig {
        duration: SimDuration::from_secs(if cfg.quick { 20 } else { 60 }),
        seed: cfg.seed,
        ..Default::default()
    };
    let dnn_cfg = if cfg.quick {
        DnnWorkloadConfig::smoke()
    } else {
        DnnWorkloadConfig {
            dlt_jobs: 60,
            dli_tasks: 150,
            duration: SimDuration::from_secs(120),
            time_scale: 1.0 / 240.0,
            seed: cfg.seed,
        }
    };

    let mut sweeps = Vec::new();
    let mut all_match = true;

    // Cluster study: serial baseline, then --threads.
    let t0 = Instant::now();
    let serial = ClusterStudy::run_with_obs_threads(&cluster_cfg, &Obs::disabled(), 1);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let serial_digest = combined_digest(serial.reports.iter().flatten());
    sweeps.push(SweepTiming {
        name: "cluster".into(),
        threads: 1,
        wall_ms: serial_ms,
        digest: serial_digest.clone(),
        speedup_vs_serial: None,
    });
    let t0 = Instant::now();
    let par = ClusterStudy::run_with_obs_threads(&cluster_cfg, &Obs::disabled(), cfg.threads);
    let par_ms = t0.elapsed().as_secs_f64() * 1e3;
    let par_digest = combined_digest(par.reports.iter().flatten());
    all_match &= par_digest == serial_digest;
    sweeps.push(SweepTiming {
        name: "cluster".into(),
        threads: cfg.threads,
        wall_ms: par_ms,
        digest: par_digest,
        speedup_vs_serial: Some(serial_ms / par_ms.max(1e-9)),
    });

    // DNN study: same protocol.
    let t0 = Instant::now();
    let serial = DnnStudy::run_threads(&dnn_cfg, 1);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let serial_digest = combined_digest(serial.reports.iter());
    sweeps.push(SweepTiming {
        name: "dnn".into(),
        threads: 1,
        wall_ms: serial_ms,
        digest: serial_digest.clone(),
        speedup_vs_serial: None,
    });
    let t0 = Instant::now();
    let par = DnnStudy::run_threads(&dnn_cfg, cfg.threads);
    let par_ms = t0.elapsed().as_secs_f64() * 1e3;
    let par_digest = combined_digest(par.reports.iter());
    all_match &= par_digest == serial_digest;
    sweeps.push(SweepTiming {
        name: "dnn".into(),
        threads: cfg.threads,
        wall_ms: par_ms,
        digest: par_digest,
        speedup_vs_serial: Some(serial_ms / par_ms.max(1e-9)),
    });

    (sweeps, all_match)
}

fn events_benches(cfg: &PerfConfig) -> Vec<EventsBench> {
    // Heartbeat at 5× the tick: between scheduling rounds every tick is
    // dead at the orchestrator level — the event queue's best case, and
    // the shape where a correctness bug (a span jumping over a trigger, a
    // handler firing off-grid) would immediately shift decisions and
    // split the digests.
    let mut run_cfg = ExperimentConfig {
        duration: SimDuration::from_secs(if cfg.quick { 20 } else { 60 }),
        seed: cfg.seed,
        ..Default::default()
    };
    run_cfg.orch.heartbeat = SimDuration::from_millis(50);
    let phase_count = |r: &knots_core::metrics::RunReport, phase: &str| {
        r.phase_timings.iter().find(|t| t.phase == phase).map(|t| t.count).unwrap_or(0)
    };
    let legs = [
        ("naive", LoopMode::Naive, true),
        ("calendar", LoopMode::Calendar, false),
        ("events", LoopMode::EventQueue, false),
    ];
    let mut out = Vec::new();
    for name in ["Res-Ag", "CBP+PP"] {
        let mut walls = [0.0f64; 3];
        let mut reports = Vec::with_capacity(3);
        for (i, (_, mode, naive)) in legs.iter().enumerate() {
            let mut leg_cfg = run_cfg;
            leg_cfg.orch.mode = *mode;
            leg_cfg.orch.naive_ticking = *naive;
            let t0 = Instant::now();
            let r = knots_core::experiment::run_mix(
                scheduler_by_name(name).expect("known scheduler"),
                AppMix::Mix2,
                &leg_cfg,
            );
            walls[i] = t0.elapsed().as_secs_f64() * 1e3;
            reports.push(r);
        }
        let d0 = report_digest(&reports[0]);
        let steps_taken = phase_count(&reports[2], "step");
        let ticks_total = phase_count(&reports[0], "step");
        out.push(EventsBench {
            name: format!("{name}_mix2_hb50ms"),
            naive_wall_ms: walls[0],
            calendar_wall_ms: walls[1],
            event_wall_ms: walls[2],
            calendar_speedup: walls[0] / walls[1].max(1e-9),
            event_speedup: walls[0] / walls[2].max(1e-9),
            steps_taken,
            ticks_total,
            ticks_skipped: ticks_total.saturating_sub(steps_taken),
            events_processed: reports[2].events_processed,
            digests_match: reports.iter().all(|r| report_digest(r) == d0),
        });
    }
    out
}

fn self_check_legs() -> Vec<SelfCheckLeg> {
    selfcheck::run()
        .into_iter()
        .map(|l| SelfCheckLeg {
            scheduler: l.scheduler.to_string(),
            digest_a: format!("{:016x}", l.digest_a),
            digest_b: format!("{:016x}", l.digest_b),
            digest_obs: format!("{:016x}", l.digest_obs),
            ok: l.ok(),
        })
        .collect()
}

fn analyze_bench() -> AnalyzeBench {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = knots_analyzer::engine::discover(&root).map(|f| f.len()).unwrap_or(0);
    let t0 = Instant::now();
    let diagnostics = knots_analyzer::check_root(&root).map(|d| d.len()).unwrap_or(usize::MAX);
    AnalyzeBench { files, diagnostics, wall_ms: t0.elapsed().as_secs_f64() * 1e3 }
}

/// Run the whole harness.
pub fn run(cfg: &PerfConfig) -> PerfReport {
    eprintln!("[perf: microbenchmarks ...]");
    let micro = micro_benches(cfg);
    eprintln!("[perf: figure sweeps at 1 and {} thread(s) ...]", cfg.threads);
    let (sweeps, sweep_digests_match) = sweep_benches(cfg);
    eprintln!("[perf: naive vs calendar vs event-queue A/B ...]");
    let events = events_benches(cfg);
    eprintln!("[perf: analyzer self-check legs ...]");
    let self_check = self_check_legs();
    eprintln!("[perf: analyzer workspace pass ...]");
    let analyze = analyze_bench();
    PerfReport {
        quick: cfg.quick,
        threads: cfg.threads,
        host: HostInfo { available_parallelism: crate::parallel::default_threads() },
        micro,
        sweeps,
        sweep_digests_match,
        events,
        self_check,
        analyze,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_is_deterministic_and_green() {
        let cfg = PerfConfig { quick: true, threads: 2, seed: 42 };
        let (sweeps, digests_match) = sweep_benches(&cfg);
        assert!(digests_match, "parallel sweeps must reproduce serial digests: {sweeps:?}");
        assert_eq!(sweeps.len(), 4);
        assert!(sweeps.iter().all(|s| s.wall_ms > 0.0));
        // Serial and parallel legs of the same sweep share a digest string.
        assert_eq!(sweeps[0].digest, sweeps[1].digest);
        assert_eq!(sweeps[2].digest, sweeps[3].digest);
    }

    #[test]
    fn events_legs_skip_ticks_and_keep_digests() {
        let cfg = PerfConfig { quick: true, threads: 1, seed: 42 };
        let legs = events_benches(&cfg);
        assert_eq!(legs.len(), 2);
        for leg in &legs {
            assert!(leg.digests_match, "{}: loop modes diverged from naive ticking", leg.name);
            assert!(
                leg.ticks_skipped > 0,
                "{}: a 50 ms heartbeat over a 10 ms tick must skip dead iterations \
                 ({} steps over {} ticks)",
                leg.name,
                leg.steps_taken,
                leg.ticks_total
            );
            assert!(
                leg.events_processed > 0,
                "{}: the event-queue leg must pop calendar events",
                leg.name
            );
            assert!(
                leg.naive_wall_ms > 0.0 && leg.calendar_wall_ms > 0.0 && leg.event_wall_ms > 0.0
            );
        }
    }

    #[test]
    fn analyze_bench_scans_a_clean_workspace() {
        let a = analyze_bench();
        assert!(a.files > 40, "workspace discovery came up short: {a:?}");
        assert_eq!(a.diagnostics, 0, "workspace must be analyzer-clean: {a:?}");
        assert!(a.wall_ms > 0.0);
    }

    #[test]
    fn micro_benches_produce_positive_timings() {
        let cfg = PerfConfig { quick: true, threads: 1, seed: 7 };
        let micro = micro_benches(&cfg);
        assert!(micro.iter().any(|m| m.name == "acf_one_pass"));
        assert!(micro.iter().any(|m| m.name == "spearman_gate_cached"));
        assert!(micro.iter().any(|m| m.name == "schedule_round_full_mix"));
        for m in &micro {
            assert!(m.per_iter_us >= 0.0, "{}: {}", m.name, m.per_iter_us);
            assert!(m.iters > 0, "{}", m.name);
        }
    }
}
