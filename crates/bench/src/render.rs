//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A rendered experiment table: a title, column headers, and rows.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table {
    /// Table title (e.g. `"Fig. 9 — cluster-wide utilization"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", c, width = widths[i]);
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Format a float with `d` decimals.
pub fn f(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

/// Format a percent value.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.starts_with("T\n"));
        assert!(s.contains("333"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.2345, 2), "1.23");
        assert_eq!(pct(12.34), "12.3%");
    }
}
