//! Bounded work pool for the figure sweeps.
//!
//! The implementation moved to [`knots_sim::pool`] so the simulator's
//! per-tick node fan-out and the harness share one set of primitives
//! (scoped `run_jobs` for borrowed sweep legs, a persistent
//! [`knots_sim::pool::WorkerPool`] for owned per-tick work). This module
//! re-exports the sweep-facing pieces to keep existing call sites stable.

pub use knots_sim::pool::{default_threads, run_jobs};
