//! A dependency-free bounded work pool for the figure sweeps.
//!
//! The sweeps are embarrassingly parallel (independent scheduler/mix legs,
//! each leg fully deterministic from its seed), so all the harness needs is
//! scoped threads pulling jobs off a shared queue and writing results into
//! *by-index slots* — output order is the submission order no matter which
//! worker finishes first, which keeps `BENCH_*.json` and the rendered
//! tables byte-stable across thread counts.

use std::sync::Mutex;

/// Worker count to use when the user does not pass `--threads`: the host's
/// available parallelism, falling back to 1 when it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `jobs` on at most `threads` scoped worker threads and return their
/// results in submission order.
///
/// `threads` is clamped to `1..=jobs.len()`; `threads == 1` degenerates to
/// a plain serial loop on the calling thread (the baseline the perf harness
/// times against). A panicking job propagates out of the scope, as the
/// previous spawn-per-job code did.
pub fn run_jobs<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    // Indexed job queue; workers drain it and fill the slot matching each
    // job's original position.
    let queue: Mutex<Vec<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop();
                let Some((i, f)) = job else { break };
                let out = f();
                *slots[i].lock().expect("slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot poisoned").expect("job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order() {
        // Stagger job durations so completion order differs from submission
        // order; the result vector must not care.
        let expected: Vec<usize> = (0..16).map(|i| i * i).collect();
        for threads in [1, 2, 4, 32] {
            let jobs: Vec<_> = (0..16usize)
                .map(|i| {
                    move || {
                        std::thread::sleep(std::time::Duration::from_millis(((16 - i) % 5) as u64));
                        i * i
                    }
                })
                .collect();
            assert_eq!(run_jobs(jobs, threads), expected, "threads {threads}");
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let none: Vec<fn() -> i32> = Vec::new();
        assert_eq!(run_jobs(none, 4), Vec::<i32>::new());
        assert_eq!(run_jobs(vec![|| 7], 0), vec![7], "threads clamp to 1");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
