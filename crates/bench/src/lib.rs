//! # knots-bench — the experiment regeneration harness
//!
//! One module per table/figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index). Each module exposes a `run(...)` function that
//! returns structured rows; the `experiments` binary renders them as text
//! tables and JSON. Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod parallel;
pub mod perf;
pub mod render;
