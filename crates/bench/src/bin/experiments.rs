//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments <command> [--quick] [--seed N] [--secs N] [--json DIR]
//!                       [--threads N] [--out FILE]
//!                       [--trace FILE.jsonl] [--metrics FILE.prom]
//!
//! commands:
//!   fig1      energy efficiency vs utilization (GPU vs CPUs)
//!   fig2      Alibaba trace analysis (correlations + CDFs)
//!   fig3      Rodinia resource consumption on one node
//!   fig4      DNN inference memory vs batch size (incl. TF bar)
//!   cluster   the ten-node study: Figs. 6, 7, 8, 9, 10a, 11a, 11b
//!   fig10b    prediction accuracy vs heartbeat interval
//!   dnn       the 256-GPU DL study: Fig. 12a, Fig. 12b, Table IV
//!   trace     the DNN bake-off with causal tracing ± a seeded fault plan:
//!             Chrome traces per leg + per-stage latency breakdown + digest
//!   chaos     fault-intensity sweep: QoS / throughput / crashes (DESIGN.md §10)
//!   recovery  controller-crash density sweep: checkpoint/WAL recovery cost
//!             with per-leg bit-identity checks (DESIGN.md §15)
//!   perf      decision-loop microbenchmarks + sweep timings -> BENCH_6.json
//!   scale     32 -> 1,024-node sweep: serial vs sharded-parallel core,
//!             wall time + schedule-round p99, digest-checked -> BENCH_7.json
//!   all       everything above except trace, chaos, recovery, perf and scale
//! ```
//!
//! `--quick` shrinks run lengths for smoke testing; the defaults match the
//! numbers recorded in EXPERIMENTS.md.
//!
//! `--threads` bounds the worker pool for the cluster/dnn sweeps and the
//! parallel legs of `perf` (default: the host's available parallelism).
//! `--out` overrides where `perf` writes its JSON report.
//!
//! `--trace` (cluster command) writes the scheduler-decision audit trail as
//! JSONL; `--metrics` writes the control-loop counters and histograms in
//! Prometheus text exposition format.
//!
//! Unknown flags are an error: the run aborts with usage on stderr and a
//! non-zero exit so a typo cannot silently fall back to defaults.

use knots_bench::figures::*;
use knots_bench::render::Table;
use knots_core::experiment::ExperimentConfig;
use knots_sim::time::SimDuration;
use knots_workloads::dnn::DnnWorkloadConfig;
use std::io::Write as _;

const USAGE: &str =
    "usage: experiments <fig1|fig2|fig3|fig4|cluster|fig10b|dnn|trace|ablation|chaos|recovery|perf|scale|all> \
     [--quick] [--seed N] [--secs N] [--json DIR] [--threads N] [--out FILE] \
     [--trace FILE.jsonl] [--metrics FILE.prom]";

struct Opts {
    quick: bool,
    seed: u64,
    secs: Option<u64>,
    json_dir: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    threads: usize,
    out: Option<String>,
}

/// Parse everything after the command word. Returns `Err` with a message for
/// unknown flags or malformed values; the caller prints it plus usage and
/// exits non-zero.
fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        quick: false,
        seed: 42,
        secs: None,
        json_dir: None,
        trace: None,
        metrics: None,
        threads: knots_bench::parallel::default_threads(),
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        match a.as_str() {
            "--quick" => o.quick = true,
            "--seed" => {
                let v = value("--seed")?;
                o.seed = v.parse().map_err(|_| format!("--seed: not an integer: {v:?}"))?;
            }
            "--secs" => {
                let v = value("--secs")?;
                o.secs = Some(v.parse().map_err(|_| format!("--secs: not an integer: {v:?}"))?);
            }
            "--threads" => {
                let v = value("--threads")?;
                let n: usize =
                    v.parse().map_err(|_| format!("--threads: not an integer: {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be >= 1".into());
                }
                o.threads = n;
            }
            "--json" => o.json_dir = Some(value("--json")?),
            "--out" => o.out = Some(value("--out")?),
            "--trace" => o.trace = Some(value("--trace")?),
            "--metrics" => o.metrics = Some(value("--metrics")?),
            other => return Err(format!("unknown flag: {other:?}")),
        }
    }
    Ok(o)
}

fn emit(opts: &Opts, name: &str, tables: &[Table]) {
    for t in tables {
        println!("{}", t.render());
    }
    if let Some(dir) = &opts.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{name}.json");
        let mut f = std::fs::File::create(&path).expect("create json file");
        let payload = serde_json::to_string_pretty(tables).expect("serialize tables");
        f.write_all(payload.as_bytes()).expect("write json");
        eprintln!("[wrote {path}]");
    }
}

fn cluster_cfg(opts: &Opts) -> ExperimentConfig {
    let secs = opts.secs.unwrap_or(if opts.quick { 60 } else { 300 });
    ExperimentConfig {
        duration: SimDuration::from_secs(secs),
        seed: opts.seed,
        ..Default::default()
    }
}

fn run_fig1(opts: &Opts) {
    let rows = fig01_energy_efficiency::run();
    emit(opts, "fig1", &[fig01_energy_efficiency::table(&rows)]);
}

fn run_fig2(opts: &Opts) {
    let fig = fig02_alibaba::run(opts.seed);
    emit(opts, "fig2", &fig02_alibaba::tables(&fig));
}

fn run_fig3(opts: &Opts) {
    let scale = if opts.quick { 0.3 } else { 1.0 };
    let fig = fig03_rodinia::run(scale, 500);
    emit(opts, "fig3", &[fig03_rodinia::table(&fig, 40)]);
}

fn run_fig4(opts: &Opts) {
    let rows = fig04_djinn_memory::run();
    emit(opts, "fig4", &[fig04_djinn_memory::table(&rows)]);
}

fn run_cluster(opts: &Opts) {
    let cfg = cluster_cfg(opts);
    eprintln!(
        "[cluster study: 4 schedulers x 3 mixes, {}s window each, {} thread(s) ...]",
        cfg.duration.as_secs_f64(),
        opts.threads
    );
    // Event recording is only paid for when a trace sink was requested;
    // the metrics registry is always live (counters are cheap).
    let obs = if opts.trace.is_some() {
        knots_obs::Obs::with_trace_capacity(1 << 20)
    } else {
        knots_obs::Obs::disabled()
    };
    let t0 = std::time::Instant::now();
    let study = fig06_09_cluster::ClusterStudy::run_with_obs_threads(&cfg, &obs, opts.threads);
    eprintln!("[cluster study done in {:.1?}]", t0.elapsed());
    if let Some(path) = &opts.trace {
        obs.recorder.write_jsonl(std::path::Path::new(path)).expect("write trace jsonl");
        eprintln!("[wrote {path}: {} events]", obs.recorder.len());
    }
    if let Some(path) = &opts.metrics {
        std::fs::write(path, obs.metrics.to_prometheus()).expect("write metrics");
        eprintln!("[wrote {path}]");
    }

    let mut tables = Vec::new();
    for m in 0..3 {
        tables.push(fig06_09_cluster::per_node_table(&study, m, "Res-Ag", "Fig. 6"));
    }
    tables.push(fig06_09_cluster::fig7_table(&study));
    for m in 0..3 {
        tables.push(fig06_09_cluster::per_node_table(&study, m, "CBP+PP", "Fig. 8"));
    }
    for m in 0..3 {
        tables.push(fig06_09_cluster::fig9_table(&study, m));
    }
    tables.push(fig10a_qos::table(&fig10a_qos::run(&study)));
    tables.push(fig11_power::table(&fig11_power::run(&study)));
    tables.push(fig06_09_cluster::fig11b_table(&study, 0));
    emit(opts, "cluster", &tables);
}

fn run_fig10b(opts: &Opts) {
    let mut cfg = fig10b_accuracy::Fig10bConfig { seed: opts.seed, ..Default::default() };
    if opts.quick {
        cfg.evaluations = 40;
    }
    eprintln!("[fig10b sweep ...]");
    let t0 = std::time::Instant::now();
    let points = fig10b_accuracy::run(&cfg);
    eprintln!("[fig10b done in {:.1?}]", t0.elapsed());
    emit(opts, "fig10b", &[fig10b_accuracy::table(&points)]);
}

fn run_dnn(opts: &Opts) {
    let workload = if opts.quick {
        DnnWorkloadConfig::smoke()
    } else {
        DnnWorkloadConfig { seed: opts.seed, ..DnnWorkloadConfig::compressed() }
    };
    eprintln!(
        "[dnn study: 4 schedulers, {} DLT + {} DLI, 256 GPUs, {} thread(s) ...]",
        workload.dlt_jobs, workload.dli_tasks, opts.threads
    );
    let t0 = std::time::Instant::now();
    let study = fig12_dnn::DnnStudy::run_threads(&workload, opts.threads);
    eprintln!("[dnn study done in {:.1?}]", t0.elapsed());
    emit(
        opts,
        "dnn",
        &[
            fig12_dnn::fig12a_table(&study, 12),
            fig12_dnn::fig12b_table(&study),
            fig12_dnn::table4(&study),
        ],
    );
}

fn run_trace(opts: &Opts) {
    let workload = if opts.quick {
        DnnWorkloadConfig::smoke()
    } else {
        DnnWorkloadConfig { seed: opts.seed, ..DnnWorkloadConfig::compressed() }
    };
    eprintln!(
        "[trace study: 4 schedulers x (clean, faulted), {} DLT + {} DLI, {} thread(s) ...]",
        workload.dlt_jobs, workload.dli_tasks, opts.threads
    );
    let t0 = std::time::Instant::now();
    let study = trace_study::TraceStudy::run_threads(&workload, opts.seed, opts.threads);
    eprintln!("[trace study done in {:.1?}]", t0.elapsed());
    if let Some(dir) = &opts.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        for leg in &study.legs {
            let path = format!("{dir}/{}.json", trace_study::leg_slug(leg));
            std::fs::write(&path, &leg.chrome_json).expect("write chrome trace");
            eprintln!("[wrote {path}: {} spans]", leg.spans);
        }
    }
    emit(opts, "trace", &[trace_study::breakdown_table(&study), trace_study::spans_table(&study)]);
    println!("trace digest: {}", trace_study::digest(&study));
}

fn run_ablations(opts: &Opts) {
    let mut cfg = cluster_cfg(opts);
    if opts.secs.is_none() {
        cfg.duration = SimDuration::from_secs(if opts.quick { 30 } else { 120 });
    }
    eprintln!("[ablation sweeps over App-Mix-1, {}s each ...]", cfg.duration.as_secs_f64());
    let tables = vec![
        ablations::table(
            "Ablation — CBP resize percentile (paper: p80)",
            &ablations::resize_percentile(&cfg),
        ),
        ablations::table(
            "Ablation — Spearman co-location threshold (Algorithm 1: 0.5)",
            &ablations::correlation_threshold(&cfg),
        ),
        ablations::table(
            "Ablation — sliding window d (paper: 5 s)",
            &ablations::window_length(&cfg),
        ),
        ablations::table(
            "Ablation — Res-Ag bin-packing strategy (paper: first-fit decreasing)",
            &ablations::pack_strategy(&cfg),
        ),
    ];
    emit(opts, "ablations", &tables);
}

fn run_chaos(opts: &Opts) {
    let mut cfg = cluster_cfg(opts);
    if opts.secs.is_none() {
        cfg.duration = SimDuration::from_secs(if opts.quick { 45 } else { 180 });
    }
    let intensities: &[f64] =
        if opts.quick { &[0.0, 5.0, 20.0] } else { &[0.0, 2.0, 5.0, 10.0, 20.0] };
    eprintln!(
        "[chaos sweep: {} schedulers x {} intensities, {}s window each, {} thread(s) ...]",
        chaos_sweep::CHAOS_SCHEDULERS.len(),
        intensities.len(),
        cfg.duration.as_secs_f64(),
        opts.threads
    );
    let t0 = std::time::Instant::now();
    let rows = chaos_sweep::run(&cfg, intensities, opts.threads);
    eprintln!("[chaos sweep done in {:.1?}]", t0.elapsed());
    emit(opts, "chaos", &[chaos_sweep::table(&rows)]);
}

fn run_recovery(opts: &Opts) {
    let mut cfg = cluster_cfg(opts);
    cfg.nodes = 4;
    if opts.secs.is_none() {
        cfg.duration = SimDuration::from_secs(if opts.quick { 45 } else { 180 });
    }
    let densities: &[f64] = if opts.quick { &[0.0, 4.0] } else { &[0.0, 1.0, 3.0, 6.0] };
    eprintln!(
        "[recovery sweep: {} schedulers x {} crash densities, {}s window each, {} thread(s) ...]",
        knots_core::experiment::DNN_SCHEDULERS.len(),
        densities.len(),
        cfg.duration.as_secs_f64(),
        opts.threads
    );
    let t0 = std::time::Instant::now();
    let rows = recovery_sweep::run(&cfg, densities, opts.threads);
    eprintln!("[recovery sweep done in {:.1?}]", t0.elapsed());
    emit(opts, "recovery", &[recovery_sweep::table(&rows)]);
    // Stable per-leg digest lines: CI runs the sweep twice and diffs these
    // (wall-clock columns in the table above legitimately differ).
    for r in &rows {
        println!(
            "recovery-digest {} cpm={} {:#018x}",
            r.scheduler, r.crashes_per_minute, r.digest
        );
    }
    if !recovery_sweep::all_match(&rows) {
        eprintln!("[recovery: BIT-IDENTITY CHECK FAILED — a recovered leg diverged]");
        std::process::exit(1);
    }
    eprintln!("[recovery: every recovered leg matches its uninterrupted baseline]");
}

fn run_perf(opts: &Opts) {
    let cfg =
        knots_bench::perf::PerfConfig { quick: opts.quick, threads: opts.threads, seed: opts.seed };
    let report = knots_bench::perf::run(&cfg);
    let path = opts.out.as_deref().unwrap_or("BENCH_6.json");
    let payload = serde_json::to_string_pretty(&report).expect("serialize perf report");
    std::fs::write(path, payload).expect("write perf report");
    eprintln!("[wrote {path}]");
    for s in &report.sweeps {
        match s.speedup_vs_serial {
            Some(x) => eprintln!(
                "[{} x{} threads: {:.0} ms, {:.2}x vs serial]",
                s.name, s.threads, s.wall_ms, x
            ),
            None => eprintln!("[{} serial baseline: {:.0} ms]", s.name, s.wall_ms),
        }
    }
    if !report.ok() {
        eprintln!("[perf: DETERMINISM CHECK FAILED — see {path}]");
        std::process::exit(1);
    }
    eprintln!("[perf: all determinism digests match]");
}

fn run_scale(opts: &Opts) {
    let nodes: &[usize] =
        if opts.quick { &[32, 64, 128] } else { &[32, 64, 128, 256, 512, 1024] };
    let shards = if opts.quick { 2 } else { 8 };
    let secs = opts.secs.unwrap_or(if opts.quick { 20 } else { 60 });
    eprintln!(
        "[scale sweep: {} node counts up to {}, {} shard(s) x {} worker(s), {}s window each ...]",
        nodes.len(),
        nodes.last().copied().unwrap_or(0),
        shards,
        opts.threads,
        secs
    );
    let t0 = std::time::Instant::now();
    let points = scale_sweep::run(nodes, shards, opts.threads, secs, opts.seed);
    eprintln!("[scale sweep done in {:.1?}]", t0.elapsed());
    emit(opts, "scale", &[scale_sweep::table(&points)]);
    // Stable per-point digest lines: CI runs the sweep twice and diffs
    // these (the wall-clock columns above legitimately differ).
    for p in &points {
        println!("scale-digest nodes={} shards={} {:#018x}", p.nodes, p.shards, p.digest);
    }
    let report = scale_sweep::ScaleReport {
        quick: opts.quick,
        seed: opts.seed,
        secs,
        available_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        effective_threads: opts.threads,
        points,
    };
    let path = opts.out.as_deref().unwrap_or("BENCH_7.json");
    let payload = serde_json::to_string_pretty(&report).expect("serialize scale report");
    std::fs::write(path, payload).expect("write scale report");
    eprintln!("[wrote {path}]");
    if !report.ok() {
        eprintln!("[scale: BIT-IDENTITY CHECK FAILED — a sharded leg diverged]");
        std::process::exit(1);
    }
    eprintln!("[scale: every sharded-parallel leg matches its serial baseline]");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("help");
    let opts = match parse_opts(args.get(1..).unwrap_or(&[])) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    match cmd {
        "fig1" => run_fig1(&opts),
        "fig2" => run_fig2(&opts),
        "fig3" => run_fig3(&opts),
        "fig4" => run_fig4(&opts),
        "cluster" | "fig6" | "fig7" | "fig8" | "fig9" | "fig10a" | "fig11a" | "fig11b" => {
            run_cluster(&opts)
        }
        "fig10b" => run_fig10b(&opts),
        "dnn" | "fig12a" | "fig12b" | "table4" => run_dnn(&opts),
        "trace" => run_trace(&opts),
        "ablation" | "ablations" => run_ablations(&opts),
        "chaos" => run_chaos(&opts),
        "recovery" => run_recovery(&opts),
        "perf" => run_perf(&opts),
        "scale" => run_scale(&opts),
        "all" => {
            run_fig1(&opts);
            run_fig2(&opts);
            run_fig3(&opts);
            run_fig4(&opts);
            run_cluster(&opts);
            run_fig10b(&opts);
            run_dnn(&opts);
            run_ablations(&opts);
        }
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}
