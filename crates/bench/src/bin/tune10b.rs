//! Internal tuning sweep for the Fig. 10b parameters: finds the
//! (noise, spike) configuration whose ARIMA accuracy curve best matches
//! the paper's reported shape. Not part of the documented experiment
//! surface; kept for reproducibility of the chosen defaults.

use knots_bench::figures::fig10b_accuracy::{run, Fig10bConfig};

fn main() {
    // Paper targets at [1000, 500, 100, 10, 1, 0.1] ms (interpolating the
    // reported 36% -> 84% rise and the post-1ms drop).
    let target = [0.36, 0.45, 0.60, 0.75, 0.84, 0.65];
    let mut best = (f64::INFINITY, String::new());
    for sigma0 in [7.0, 9.0] {
        for rate in [4.0, 6.0, 10.0] {
            for dur in [(0.002, 0.012), (0.002, 0.030)] {
                let cfg = Fig10bConfig {
                    sigma0_pct: sigma0,
                    spike_rate: rate,
                    spike_dur: dur,
                    evaluations: 80,
                    ..Default::default()
                };
                let points = run(&cfg);
                let arima: Vec<f64> = points
                    .iter()
                    .filter(|p| p.model.contains("ARIMA"))
                    .map(|p| p.accuracy)
                    .collect();
                let err: f64 = arima
                    .iter()
                    .zip(target.iter())
                    .map(|(a, t)| (a - t) * (a - t))
                    .sum::<f64>()
                    .sqrt();
                let label = format!(
                    "sigma0={sigma0} rate={rate} dur={dur:?} -> {:?} err={err:.3}",
                    arima.iter().map(|a| (a * 100.0).round()).collect::<Vec<_>>()
                );
                println!("{label}");
                if err < best.0 {
                    best = (err, label);
                }
            }
        }
    }
    println!("\nBEST: {}", best.1);
}
