//! Scheduler decision latency: how long one `decide()` round takes for
//! each policy as the pending queue and cluster grow. The paper notes CBP's
//! O(N²·d) placement cost (§IV-C); this bench makes that cost measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knots_sched::context::{app_key, PendingPodView, SchedContext};
use knots_sched::{
    cbp::Cbp, pp::CbpPp, resag::ResAg, tiresias::Tiresias, uniform::Uniform, Scheduler,
};
use knots_sim::ids::{NodeId, PodId};
use knots_sim::metrics::GpuSample;
use knots_sim::pod::QosClass;
use knots_sim::resources::{GpuModel, Usage};
use knots_sim::time::{SimDuration, SimTime};
use knots_telemetry::{ClusterSnapshot, NodeView, PodView, TimeSeriesDb};

fn snapshot(nodes: usize, pods_per_node: usize) -> ClusterSnapshot {
    let node_views = (0..nodes)
        .map(|i| {
            let pods: Vec<PodView> = (0..pods_per_node)
                .map(|j| PodView {
                    id: PodId((i * 100 + j) as u64),
                    name: format!("app{}-{}", j % 4, j),
                    qos: QosClass::Batch,
                    limit_mb: 2_000.0,
                    request_mb: 3_000.0,
                    usage: Usage::new(0.2, 1_800.0, 0.0, 0.0),
                    pulling: false,
                    attained_service_secs: (j * 40) as f64,
                })
                .collect();
            let used = pods.iter().map(|p| p.usage.mem_mb).sum::<f64>();
            NodeView {
                id: NodeId(i),
                model: GpuModel::P100,
                capacity_mb: 16_384.0,
                free_measured_mb: 16_384.0 - used,
                free_provision_mb: 16_384.0 - pods.len() as f64 * 2_000.0,
                sample: GpuSample { sm_util: 0.3, mem_used_mb: used, ..Default::default() },
                pods,
                asleep: false,
                waking: false,
            }
        })
        .collect();
    ClusterSnapshot { at: SimTime::from_secs(10), nodes: node_views }
}

fn pending(n: usize) -> Vec<PendingPodView> {
    (0..n)
        .map(|i| PendingPodView {
            id: PodId(10_000 + i as u64),
            name: format!("app{}-{i}", i % 4),
            app: app_key(&format!("app{}-{i}", i % 4)),
            qos: if i % 3 == 0 { QosClass::latency_critical() } else { QosClass::Batch },
            request_mb: 1_000.0 + (i % 8) as f64 * 500.0,
            limit_mb: 1_000.0 + (i % 8) as f64 * 500.0,
            greedy_memory: i % 3 == 0,
            allow_growth: false,
            arrival: SimTime::ZERO,
            crashes: 0,
        })
        .collect()
}

fn seeded_tsdb(nodes: usize, pods_per_node: usize) -> TimeSeriesDb {
    let db = TimeSeriesDb::default();
    for i in 0..nodes {
        for t in 0..500u64 {
            db.push_node(
                NodeId(i),
                GpuSample {
                    at: SimTime::from_millis(t * 10),
                    sm_util: 0.3,
                    mem_used_mb: 3_000.0 + (t % 50) as f64 * 20.0,
                    ..Default::default()
                },
            );
            for j in 0..pods_per_node {
                db.push_pod(
                    PodId((i * 100 + j) as u64),
                    SimTime::from_millis(t * 10),
                    Usage::new(0.2, 1_500.0 + ((t + j as u64) % 40) as f64 * 25.0, 0.0, 0.0),
                );
            }
        }
    }
    db
}

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide");
    for &(nodes, queue) in &[(10usize, 16usize), (64, 64), (256, 128)] {
        let snap = snapshot(nodes, 2);
        let pend = pending(queue);
        let db = seeded_tsdb(nodes, 2);
        let ctx = || SchedContext {
            now: snap.at,
            snapshot: &snap,
            pending: &pend,
            suspended: &[],
            tsdb: &db,
            window: SimDuration::from_secs(5),
            recorder: None,
            cache: Default::default(),
            freshness: None,
            shards: 1,
        };
        let label = format!("{nodes}n_{queue}q");
        group.bench_with_input(BenchmarkId::new("uniform", &label), &(), |b, _| {
            let mut s = Uniform::new();
            b.iter(|| s.decide(&ctx()));
        });
        group.bench_with_input(BenchmarkId::new("resag", &label), &(), |b, _| {
            let mut s = ResAg::new();
            b.iter(|| s.decide(&ctx()));
        });
        group.bench_with_input(BenchmarkId::new("cbp", &label), &(), |b, _| {
            let mut s = Cbp::new();
            b.iter(|| s.decide(&ctx()));
        });
        group.bench_with_input(BenchmarkId::new("cbp_pp", &label), &(), |b, _| {
            let mut s = CbpPp::new();
            b.iter(|| s.decide(&ctx()));
        });
        group.bench_with_input(BenchmarkId::new("tiresias", &label), &(), |b, _| {
            let mut s = Tiresias::new();
            b.iter(|| s.decide(&ctx()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decide);
criterion_main!(benches);
