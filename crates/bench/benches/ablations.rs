//! Performance ablations of DESIGN.md's called-out design choices that
//! affect *runtime cost* (the quality ablations live in the `experiments`
//! binary's `ablation` subcommand): correlation-window length, bin-packing
//! strategy, and the end-to-end orchestrator tick.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knots_core::experiment::{run_mix, ExperimentConfig};
use knots_core::OrchestratorConfig;
use knots_forecast::spearman::spearman;
use knots_sched::binpack::{pick_bin, PackStrategy};
use knots_sched::pp::CbpPp;
use knots_sim::time::SimDuration;
use knots_workloads::AppMix;

fn bench_correlation_window(c: &mut Criterion) {
    // The §IV-C window `d` drives CBP's O(N²·d) placement cost.
    let mut group = c.benchmark_group("spearman_window");
    for &d in &[50usize, 500, 5_000] {
        let a: Vec<f64> = (0..d).map(|i| (i as f64 * 0.1).sin()).collect();
        let b2: Vec<f64> = (0..d).map(|i| (i as f64 * 0.13).cos()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| spearman(&a, &b2));
        });
    }
    group.finish();
}

fn bench_binpack(c: &mut Criterion) {
    let bins: Vec<(usize, f64)> =
        (0..256).map(|i| (i, 1_000.0 + (i % 17) as f64 * 900.0)).collect();
    let mut group = c.benchmark_group("binpack_256bins");
    for (name, strat) in [
        ("first_fit", PackStrategy::FirstFit),
        ("best_fit", PackStrategy::BestFit),
        ("worst_fit", PackStrategy::WorstFit),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for size in [512.0, 2_048.0, 8_192.0, 15_000.0] {
                    if pick_bin(&bins, size, strat).is_some() {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    group.finish();
}

fn bench_orchestrated_second(c: &mut Criterion) {
    // End-to-end cost of simulating one workload second at two ticks.
    let mut group = c.benchmark_group("orchestrated_mix3_10s");
    group.sample_size(10);
    for &tick_ms in &[10u64, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(tick_ms), &tick_ms, |b, &t| {
            b.iter(|| {
                let mut orch = OrchestratorConfig::default();
                orch.tick = SimDuration::from_millis(t);
                orch.heartbeat = orch.tick;
                orch.drain_grace = SimDuration::from_secs(5);
                let cfg = ExperimentConfig {
                    duration: SimDuration::from_secs(10),
                    orch,
                    ..Default::default()
                };
                run_mix(Box::new(CbpPp::new()), AppMix::Mix3, &cfg).completed
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_correlation_window, bench_binpack, bench_orchestrated_second);
criterion_main!(benches);
