//! Telemetry-path throughput: the Knots heartbeat pipeline must sustain
//! millisecond-rate sampling across the fleet (§VI-D runs at 1 ms).

use criterion::{criterion_group, criterion_main, Criterion};
use knots_sim::ids::{NodeId, PodId};
use knots_sim::metrics::{GpuSample, Metric};
use knots_sim::resources::Usage;
use knots_sim::time::{SimDuration, SimTime};
use knots_telemetry::{TimeSeriesDb, TsdbConfig};

fn bench_tsdb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsdb");

    group.bench_function("push_node", |b| {
        let db = TimeSeriesDb::new(TsdbConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            db.push_node(
                NodeId((t % 10) as usize),
                GpuSample { at: SimTime::from_micros(t), sm_util: 0.5, ..Default::default() },
            );
        });
    });

    group.bench_function("push_pod", |b| {
        let db = TimeSeriesDb::new(TsdbConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            db.push_pod(PodId(t % 64), SimTime::from_micros(t), Usage::new(0.3, 900.0, 0.0, 0.0));
        });
    });

    group.bench_function("window_query_5s_of_1ms", |b| {
        let db = TimeSeriesDb::new(TsdbConfig { node_capacity: 8192, pod_capacity: 8192 });
        for t in 0..8000u64 {
            db.push_node(
                NodeId(0),
                GpuSample { at: SimTime::from_millis(t), sm_util: 0.5, ..Default::default() },
            );
        }
        let now = SimTime::from_millis(8000);
        b.iter(|| db.node_series(NodeId(0), Metric::MemUsedMb, now, SimDuration::from_secs(5)));
    });

    group.finish();
}

criterion_group!(benches, bench_tsdb);
criterion_main!(benches);
