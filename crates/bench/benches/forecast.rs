//! Run-time cost of the forecasting models — the "profiling overheads of
//! different regression models" §IV-D weighs against their accuracy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knots_forecast::arima::Ar1;
use knots_forecast::autocorr::{acf, autocorrelation};
use knots_forecast::regressors::{Mlp, Regressor, SgdLinear, TheilSen};
use knots_forecast::spearman::spearman;

fn series(n: usize) -> Vec<f64> {
    (0..n).map(|i| 50.0 + 30.0 * (i as f64 * 0.07).sin() + (i % 13) as f64).collect()
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_predict");
    for &n in &[64usize, 512, 5_000] {
        let ys = series(n);
        group.bench_with_input(BenchmarkId::new("arima_ar1", n), &ys, |b, ys| {
            b.iter(|| {
                let m = Ar1::fit(ys);
                m.forecast(*ys.last().unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("sgd", n), &ys, |b, ys| {
            b.iter(|| {
                let mut m = SgdLinear::default();
                m.fit(ys);
                m.predict_next()
            });
        });
        // Theil-Sen is O(n^2): keep it to the sizes the harness caps it at.
        if n <= 512 {
            group.bench_with_input(BenchmarkId::new("theil_sen", n), &ys, |b, ys| {
                b.iter(|| {
                    let mut m = TheilSen::default();
                    m.fit(ys);
                    m.predict_next()
                });
            });
        }
        if n <= 512 {
            group.bench_with_input(BenchmarkId::new("mlp", n), &ys, |b, ys| {
                b.iter(|| {
                    let mut m = Mlp::default();
                    m.fit(ys);
                    m.predict_next()
                });
            });
        }
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    let a = series(512);
    let b2 = series(512).into_iter().rev().collect::<Vec<_>>();
    group.bench_function("spearman_512", |b| b.iter(|| spearman(&a, &b2)));
    group.bench_function("autocorr_lag1_512", |b| b.iter(|| autocorrelation(&a, 1)));
    group.bench_function("acf_32_512", |b| b.iter(|| acf(&a, 32)));
    group.finish();
}

criterion_group!(benches, bench_models, bench_stats);
criterion_main!(benches);
