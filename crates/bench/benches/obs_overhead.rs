//! Observability overhead: a scheduler round with no recorder, a disabled
//! recorder, and a live recorder, plus raw event-record and span-record
//! throughput. The acceptance bar is that a disabled recorder/tracer costs
//! <5% — tracing must be free when nobody asked for it (the wall-time form
//! of that bar is asserted in `tests/trace_overhead.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knots_obs::{Event, FieldValue, Recorder};
use knots_sched::context::{app_key, PendingPodView, SchedContext};
use knots_sched::{cbp::Cbp, pp::CbpPp, Scheduler};
use knots_sim::ids::{NodeId, PodId};
use knots_sim::metrics::GpuSample;
use knots_sim::pod::QosClass;
use knots_sim::resources::{GpuModel, Usage};
use knots_sim::time::{SimDuration, SimTime};
use knots_telemetry::{ClusterSnapshot, NodeView, PodView, TimeSeriesDb};
use knots_trace::{Tracer, Track};

fn snapshot(nodes: usize, pods_per_node: usize) -> ClusterSnapshot {
    let node_views = (0..nodes)
        .map(|i| {
            let pods: Vec<PodView> = (0..pods_per_node)
                .map(|j| PodView {
                    id: PodId((i * 100 + j) as u64),
                    name: format!("app{}-{}", j % 4, j),
                    qos: QosClass::Batch,
                    limit_mb: 2_000.0,
                    request_mb: 3_000.0,
                    usage: Usage::new(0.2, 1_800.0, 0.0, 0.0),
                    pulling: false,
                    attained_service_secs: (j * 40) as f64,
                })
                .collect();
            let used = pods.iter().map(|p| p.usage.mem_mb).sum::<f64>();
            NodeView {
                id: NodeId(i),
                model: GpuModel::P100,
                capacity_mb: 16_384.0,
                free_measured_mb: 16_384.0 - used,
                free_provision_mb: 16_384.0 - pods.len() as f64 * 2_000.0,
                sample: GpuSample { sm_util: 0.3, mem_used_mb: used, ..Default::default() },
                pods,
                asleep: false,
                waking: false,
            }
        })
        .collect();
    ClusterSnapshot { at: SimTime::from_secs(10), nodes: node_views }
}

fn pending(n: usize) -> Vec<PendingPodView> {
    (0..n)
        .map(|i| PendingPodView {
            id: PodId(10_000 + i as u64),
            name: format!("app{}-{i}", i % 4),
            app: app_key(&format!("app{}-{i}", i % 4)),
            qos: if i % 3 == 0 { QosClass::latency_critical() } else { QosClass::Batch },
            request_mb: 1_000.0 + (i % 8) as f64 * 500.0,
            limit_mb: 1_000.0 + (i % 8) as f64 * 500.0,
            greedy_memory: i % 3 == 0,
            allow_growth: false,
            arrival: SimTime::ZERO,
            crashes: 0,
        })
        .collect()
}

fn seeded_tsdb(nodes: usize, pods_per_node: usize) -> TimeSeriesDb {
    let db = TimeSeriesDb::default();
    for i in 0..nodes {
        for t in 0..500u64 {
            db.push_node(
                NodeId(i),
                GpuSample {
                    at: SimTime::from_millis(t * 10),
                    sm_util: 0.3,
                    mem_used_mb: 3_000.0 + (t % 50) as f64 * 20.0,
                    ..Default::default()
                },
            );
            for j in 0..pods_per_node {
                db.push_pod(
                    PodId((i * 100 + j) as u64),
                    SimTime::from_millis(t * 10),
                    Usage::new(0.2, 1_500.0 + ((t + j as u64) % 40) as f64 * 25.0, 0.0, 0.0),
                );
            }
        }
    }
    db
}

fn bench_decide_with_recorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide_obs");
    let (nodes, queue) = (64usize, 64usize);
    let snap = snapshot(nodes, 2);
    let pend = pending(queue);
    let db = seeded_tsdb(nodes, 2);
    let disabled = Recorder::disabled();
    let live = Recorder::bounded(1 << 16);
    let modes: [(&str, Option<&Recorder>); 3] =
        [("none", None), ("disabled", Some(&disabled)), ("enabled", Some(&live))];
    for (label, recorder) in modes {
        let ctx = || SchedContext {
            now: snap.at,
            snapshot: &snap,
            pending: &pend,
            suspended: &[],
            tsdb: &db,
            window: SimDuration::from_secs(5),
            recorder,
            cache: Default::default(),
            freshness: None,
            shards: 1,
        };
        group.bench_with_input(BenchmarkId::new("cbp", label), &(), |b, _| {
            let mut s = Cbp::new();
            b.iter(|| s.decide(&ctx()));
        });
        group.bench_with_input(BenchmarkId::new("cbp_pp", label), &(), |b, _| {
            let mut s = CbpPp::new();
            b.iter(|| s.decide(&ctx()));
        });
    }
    group.finish();
}

fn bench_record_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("record");
    let disabled = Recorder::disabled();
    let live = Recorder::bounded(1 << 16);
    let modes: [(&str, &Recorder); 2] = [("disabled", &disabled), ("enabled", &live)];
    for (label, rec) in modes {
        group.bench_with_input(BenchmarkId::new("event", label), &(), |b, _| {
            b.iter(|| {
                rec.record(
                    Event::new("bench", "sched.correlation")
                        .at(1_000_000)
                        .node(3)
                        .str("scheduler", "CBP")
                        .f64("spearman_rho", 0.73)
                        .bool("admitted", false),
                );
            });
        });
    }
    group.finish();
}

fn bench_trace_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    let disabled = Tracer::disabled();
    let live = Tracer::bounded(1 << 16);
    let modes: [(&str, &Tracer); 2] = [("disabled", &disabled), ("enabled", &live)];
    for (label, tracer) in modes {
        // The guarded form the orchestrator uses: the disabled mode should
        // collapse to one branch and never build the args vector.
        group.bench_with_input(BenchmarkId::new("span_guarded", label), &(), |b, _| {
            b.iter(|| {
                if tracer.enabled() {
                    tracer.record_complete(
                        Track::Pod(7),
                        "sched.round",
                        1_000,
                        2_000,
                        None,
                        vec![
                            ("scheduler", FieldValue::Str("CBP+PP".into())),
                            ("kind", FieldValue::U64(1)),
                        ],
                    );
                }
            });
        });
        // The unguarded API cost, args included.
        group.bench_with_input(BenchmarkId::new("span_instant", label), &(), |b, _| {
            b.iter(|| {
                tracer.record_instant(
                    Track::Control,
                    "probe.round",
                    1_000,
                    None,
                    vec![("nodes", FieldValue::U64(10))],
                );
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decide_with_recorder,
    bench_record_throughput,
    bench_trace_throughput
);
criterion_main!(benches);
