//! Simulator stepping throughput, including the serial-vs-parallel node
//! fan-out ablation (the scoped-thread fan-out kicks in at the configured
//! threshold).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knots_sim::prelude::*;

fn loaded_cluster(nodes: usize, parallel: bool) -> Cluster {
    let mut cfg = ClusterConfig::homogeneous(nodes, GpuModel::P100);
    cfg.overheads.cold_start_pull = SimDuration::ZERO;
    cfg.parallel_threshold = if parallel { 1 } else { usize::MAX };
    let mut cluster = Cluster::new(cfg);
    for i in 0..nodes * 2 {
        let profile = ResourceProfile::constant(0.3 + (i % 5) as f64 / 10.0, 1_500.0, 3_600.0);
        let id = cluster.submit(PodSpec::batch(format!("b-{i}"), profile), SimTime::ZERO);
        cluster.place(id, NodeId(i % nodes)).expect("place");
    }
    cluster
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_step");
    for &nodes in &[10usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("serial", nodes), &nodes, |b, &n| {
            let mut cluster = loaded_cluster(n, false);
            b.iter(|| cluster.step(SimDuration::from_millis(10)));
        });
        group.bench_with_input(BenchmarkId::new("parallel", nodes), &nodes, |b, &n| {
            let mut cluster = loaded_cluster(n, true);
            b.iter(|| cluster.step(SimDuration::from_millis(10)));
        });
    }
    group.finish();
}

fn bench_place_evict(c: &mut Criterion) {
    c.bench_function("place_preempt_resume_cycle", |b| {
        let mut cfg = ClusterConfig::homogeneous(4, GpuModel::P100);
        cfg.overheads.cold_start_pull = SimDuration::ZERO;
        cfg.overheads.resume_overhead = SimDuration::ZERO;
        let mut cluster = Cluster::new(cfg);
        let id = cluster.submit(
            PodSpec::batch("x", ResourceProfile::constant(0.5, 1_000.0, 3_600.0)),
            SimTime::ZERO,
        );
        cluster.place(id, NodeId(0)).expect("place");
        let mut target = 1usize;
        b.iter(|| {
            cluster.preempt(id).expect("preempt");
            cluster.resume(id, NodeId(target % 4)).expect("resume");
            target += 1;
        });
    });
}

criterion_group!(benches, bench_step, bench_place_evict);
criterion_main!(benches);
