//! The "near-free when disabled" acceptance bar for knots-trace, in two
//! parts:
//!
//! 1. *Behavioral* cost is exactly zero: a run through the traced entry
//!    point with a disabled tracer must produce the same decision digest as
//!    the plain entry point (they are one code path — this pins that).
//! 2. *Wall-time* cost is under 5%: interleaved min-of-N timings of the
//!    plain and traced-disabled runs. Min-of-N over an interleaved schedule
//!    squeezes out scheduler and turbo noise; the 5% bound still carries a
//!    small absolute floor so sub-second timings cannot flake CI.

use std::time::Instant;

use knots_chaos::FaultPlan;
use knots_core::experiment::{run_mix, scheduler_by_name, ExperimentConfig};
use knots_core::orchestrator::KubeKnots;
use knots_obs::Obs;
use knots_sim::cluster::ClusterConfig;
use knots_sim::time::SimDuration;
use knots_trace::Tracer;
use knots_workloads::loadgen::{LoadGenConfig, LoadGenerator};
use knots_workloads::AppMix;

fn cfg() -> ExperimentConfig {
    ExperimentConfig { duration: SimDuration::from_secs(60), seed: 42, ..Default::default() }
}

fn run_plain() -> knots_core::metrics::RunReport {
    run_mix(scheduler_by_name("CBP+PP").unwrap(), AppMix::Mix2, &cfg())
}

fn run_traced_disabled() -> knots_core::metrics::RunReport {
    let cfg = cfg();
    let schedule =
        LoadGenerator::generate(AppMix::Mix2, &LoadGenConfig::new(cfg.duration, cfg.seed));
    let mut cluster_cfg = ClusterConfig::homogeneous(cfg.nodes, knots_sim::config::TESTBED_GPU);
    cluster_cfg.prewarm_images = AppMix::Mix2.lc_services().iter().map(|s| s.image()).collect();
    knots_core::experiment::run_schedule_traced(
        scheduler_by_name("CBP+PP").unwrap(),
        &schedule,
        cluster_cfg,
        cfg.orch,
        Obs::disabled(),
        FaultPlan::empty(),
        Tracer::disabled(),
    )
}

#[test]
fn disabled_tracer_is_behaviorally_free() {
    let plain = run_plain();
    let traced = run_traced_disabled();
    assert_eq!(
        knots_analyzer::report_digest(&plain),
        knots_analyzer::report_digest(&traced),
        "a disabled tracer changed the run"
    );
}

#[test]
fn disabled_tracer_wall_time_within_five_percent() {
    // Warm both paths once (allocator, page cache, lazy statics).
    run_plain();
    run_traced_disabled();
    const ROUNDS: usize = 3;
    let mut plain_best = f64::INFINITY;
    let mut traced_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        std::hint::black_box(run_plain());
        plain_best = plain_best.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        std::hint::black_box(run_traced_disabled());
        traced_best = traced_best.min(t1.elapsed().as_secs_f64());
    }
    // 5% relative, with a 50 ms absolute floor so very fast debug/CI runs
    // cannot fail on timer granularity alone.
    let bound = (plain_best * 1.05).max(plain_best + 0.05);
    assert!(
        traced_best <= bound,
        "disabled tracing cost too much: plain {plain_best:.3}s vs traced {traced_best:.3}s"
    );
}

#[test]
fn enabled_tracer_records_without_evicting_on_the_mix_run() {
    let cfg = cfg();
    let schedule =
        LoadGenerator::generate(AppMix::Mix2, &LoadGenConfig::new(cfg.duration, cfg.seed));
    let cluster_cfg = ClusterConfig::homogeneous(cfg.nodes, knots_sim::config::TESTBED_GPU);
    let tracer = Tracer::bounded(1 << 20);
    let mut k = KubeKnots::new(cluster_cfg, scheduler_by_name("CBP+PP").unwrap(), cfg.orch)
        .with_tracer(tracer.clone());
    k.run_schedule(&schedule);
    assert!(!tracer.is_empty(), "no spans recorded");
    assert_eq!(tracer.dropped(), 0, "ring evicted on a 60 s mix run");
}
