//! Experiment accounting: everything the paper's figures report, computed
//! from a finished run.

use knots_forecast::stats::{cov, mean, percentile, utilization_quartet};
use knots_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Job-completion-time statistics, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct JctStats {
    /// Number of jobs summarized.
    pub count: usize,
    /// Mean JCT.
    pub avg: f64,
    /// Median JCT.
    pub median: f64,
    /// 99th-percentile JCT.
    pub p99: f64,
    /// Maximum JCT.
    pub max: f64,
}

impl JctStats {
    /// Summarize a set of completion times (seconds).
    pub fn from_secs(mut xs: Vec<f64>) -> JctStats {
        if xs.is_empty() {
            return JctStats::default();
        }
        xs.sort_by(|a, b| a.total_cmp(b));
        JctStats {
            count: xs.len(),
            avg: mean(&xs),
            median: percentile(&xs, 0.5),
            p99: percentile(&xs, 0.99),
            max: xs.last().copied().unwrap_or(0.0),
        }
    }

    /// Element-wise ratio against a baseline (how Table IV normalizes).
    pub fn normalized_to(&self, base: &JctStats) -> (f64, f64, f64) {
        let safe = |x: f64, y: f64| if y.abs() < 1e-12 { 0.0 } else { x / y };
        (safe(self.avg, base.avg), safe(self.median, base.median), safe(self.p99, base.p99))
    }
}

/// Wall-clock percentiles for one control-loop phase (snapshot, decide,
/// apply, step, probe), microseconds.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Phase name.
    pub phase: String,
    /// Number of timed executions.
    pub count: u64,
    /// Median, µs.
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// Mean, µs.
    pub mean_us: f64,
}

impl PhaseTiming {
    /// Convert from the observability crate's aggregate.
    pub fn from_stat(s: &knots_obs::PhaseStat) -> Self {
        PhaseTiming {
            phase: s.phase.to_string(),
            count: s.count,
            p50_us: s.p50_us,
            p95_us: s.p95_us,
            p99_us: s.p99_us,
            mean_us: s.mean_us,
        }
    }
}

/// One row of the skipped-action breakdown: how many actions of `kind`
/// failed with `error` when the orchestrator applied them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkippedAction {
    /// Action kind (`Place`, `Resize`, ...).
    pub kind: String,
    /// Simulator error label (`invalid_state`, `node_asleep`, ...).
    pub error: String,
    /// Occurrences.
    pub count: u64,
}

/// Fault-injection accounting for one run. All-zero (the default) when no
/// chaos engine was attached or its plan was empty.
///
/// Deliberately *excluded* from the determinism digest
/// (`knots_analyzer::selfcheck::report_digest`): the pinned digests predate
/// fault injection, and a fault-free run must keep producing them.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Whole-node failures injected.
    pub node_failures: u64,
    /// GPU capacity degradations injected.
    pub degradations: u64,
    /// Probe-dropout windows opened.
    pub probe_dropouts: u64,
    /// Sample-corruption windows opened.
    pub corruption_windows: u64,
    /// Individual probe readings mangled inside those windows.
    pub corrupted_samples: u64,
    /// Heartbeat delays injected.
    pub heartbeat_delays: u64,
    /// Non-finite samples the TSDB refused to store.
    pub rejected_samples: u64,
    /// Pods abandoned after hitting the crash-loop cap.
    pub gave_up: u64,
    /// `ControllerCrash` events reached in the plan (the kill/restart cycle
    /// itself is accounted in [`RecoveryStats`]).
    pub controller_crashes: u64,
}

/// Controller crash/recovery accounting for one run, filled in by the
/// recovery harness (crates/recovery). All-zero for an uninterrupted run.
///
/// Like [`FaultStats`] and `phase_timings`, excluded from the determinism
/// digest: recovery describes how the run was *executed* (how many times
/// the controller was killed and replayed), never the simulated outcome —
/// which the crash-resume proptest pins to be bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Controller kills performed by the harness.
    pub controller_crashes: u64,
    /// Checkpoints captured (including the mandatory one at t=0).
    pub checkpoints: u64,
    /// WAL events replayed across all recoveries.
    pub replayed_events: u64,
    /// Wall-clock spent in restore+replay across all recoveries, µs.
    pub recovery_wall_us: f64,
}

/// Everything measured over one orchestrated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Scheduler label.
    pub scheduler: String,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Per-node SM-utilization samples (percent, `metric_interval` apart),
    /// including idle/sleeping periods as zeros — the Fig. 6 / Fig. 8 view.
    pub node_util_series: Vec<Vec<f64>>,
    /// SM-utilization samples pooled over *active* GPUs only (nodes hosting
    /// at least one pod at sample time) — the Fig. 9 cluster-wide view,
    /// where consolidation shows up as higher utilization per active GPU.
    pub active_util_samples: Vec<f64>,
    /// Pods submitted / completed.
    pub submitted: usize,
    /// Pods completed.
    pub completed: usize,
    /// Latency-critical queries completed.
    pub lc_completed: usize,
    /// Latency-critical queries that missed the 150 ms deadline (completed
    /// late, or still unfinished past their deadline at the end of the run).
    pub lc_violations: usize,
    /// Batch JCT statistics.
    pub batch_jct: JctStats,
    /// Latency-critical end-to-end latency statistics.
    pub lc_latency: JctStats,
    /// All-pod JCT statistics.
    pub all_jct: JctStats,
    /// Total GPU energy, joules.
    pub energy_joules: f64,
    /// OOM crash count.
    pub crashes: usize,
    /// Preemption count.
    pub preemptions: usize,
    /// Migration count.
    pub migrations: usize,
    /// Actions the orchestrator skipped because they raced with state
    /// changes (diagnostic; should stay near zero).
    pub skipped_actions: usize,
    /// Skipped actions broken down by action kind and simulator error
    /// (sums to `skipped_actions`).
    pub skipped_breakdown: Vec<SkippedAction>,
    /// Per-phase wall-clock percentiles of the control loop (snapshot,
    /// decide, apply, step, probe).
    pub phase_timings: Vec<PhaseTiming>,
    /// Fault-injection accounting (all-zero without a chaos engine).
    pub faults: FaultStats,
    /// Calendar events the event-queue loop processed (zero under the
    /// `naive_ticking` oracle and the span calendar). Like `phase_timings`,
    /// excluded from the determinism digest: it describes the engine, not
    /// the simulated outcome.
    pub events_processed: u64,
    /// `events_processed` per simulated second — the event core's
    /// throughput row.
    pub events_per_sim_second: f64,
    /// Controller crash/recovery accounting (all-zero unless the run went
    /// through the recovery harness). Digest-excluded like `faults`.
    pub recovery: RecoveryStats,
}

impl RunReport {
    /// Per-node (p50, p90, p99, max) utilization — the Fig. 6 / Fig. 8 bars.
    pub fn node_quartets(&self) -> Vec<(f64, f64, f64, f64)> {
        self.node_util_series.iter().map(|s| utilization_quartet(s)).collect()
    }

    /// Cluster-wide (p50, p90, p99, max) over all node samples pooled
    /// (idle periods included).
    pub fn cluster_quartet(&self) -> (f64, f64, f64, f64) {
        let pooled: Vec<f64> = self.node_util_series.iter().flatten().copied().collect();
        utilization_quartet(&pooled)
    }

    /// Cluster-wide (p50, p90, p99, max) over active-GPU samples — the
    /// Fig. 9 bars.
    pub fn active_quartet(&self) -> (f64, f64, f64, f64) {
        utilization_quartet(&self.active_util_samples)
    }

    /// Mean SM utilization over active-GPU samples, percent.
    pub fn mean_active_util(&self) -> f64 {
        mean(&self.active_util_samples)
    }

    /// Per-node COV of utilization — Fig. 7 (sorted ascending, as plotted).
    /// Nodes that never hosted work are excluded: a constant-zero series has
    /// no load to characterize.
    pub fn node_covs_sorted(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .node_util_series
            .iter()
            .filter(|s| s.iter().any(|&u| u > 0.0))
            .map(|s| cov(s))
            .collect();
        v.sort_by(|a, b| a.total_cmp(b));
        v
    }

    /// Pairwise COV of node loads — Fig. 11b. Entry `(i, j)` is the COV of
    /// the two nodes' pooled utilization samples: near zero when the pair
    /// is balanced and steady.
    pub fn pairwise_cov(&self) -> Vec<Vec<f64>> {
        let n = self.node_util_series.len();
        let mut m = vec![vec![0.0; n]; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                let mut pooled = self.node_util_series[i].clone();
                pooled.extend_from_slice(&self.node_util_series[j]);
                let c = cov(&pooled);
                m[i][j] = c;
                m[j][i] = c;
            }
        }
        m
    }

    /// QoS violations per thousand inference queries — the Fig. 10a metric.
    pub fn violations_per_kilo(&self) -> f64 {
        let denom = self.lc_completed.max(1);
        self.lc_violations as f64 * 1000.0 / denom as f64
    }

    /// Mean SM utilization across all nodes and samples, percent.
    pub fn mean_util(&self) -> f64 {
        let pooled: Vec<f64> = self.node_util_series.iter().flatten().copied().collect();
        mean(&pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jct_stats_summary() {
        let s = JctStats::from_secs(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert!((s.avg - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.max - 4.0).abs() < 1e-12);
        assert_eq!(JctStats::from_secs(vec![]).count, 0);
    }

    #[test]
    fn normalization_ratios() {
        let a = JctStats { count: 1, avg: 2.0, median: 4.0, p99: 8.0, max: 8.0 };
        let b = JctStats { count: 1, avg: 1.0, median: 2.0, p99: 16.0, max: 16.0 };
        let (r_avg, r_med, r_p99) = a.normalized_to(&b);
        assert!((r_avg - 2.0).abs() < 1e-12);
        assert!((r_med - 2.0).abs() < 1e-12);
        assert!((r_p99 - 0.5).abs() < 1e-12);
    }

    fn report(series: Vec<Vec<f64>>) -> RunReport {
        RunReport {
            scheduler: "t".into(),
            duration: SimDuration::from_secs(1),
            node_util_series: series,
            active_util_samples: vec![],
            submitted: 0,
            completed: 0,
            lc_completed: 0,
            lc_violations: 0,
            batch_jct: JctStats::default(),
            lc_latency: JctStats::default(),
            all_jct: JctStats::default(),
            energy_joules: 0.0,
            crashes: 0,
            preemptions: 0,
            migrations: 0,
            skipped_actions: 0,
            skipped_breakdown: Vec::new(),
            phase_timings: Vec::new(),
            faults: FaultStats::default(),
            events_processed: 0,
            events_per_sim_second: 0.0,
            recovery: RecoveryStats::default(),
        }
    }

    #[test]
    fn quartets_and_covs() {
        let r = report(vec![vec![10.0; 100], (0..100).map(|i| i as f64).collect()]);
        let q = r.node_quartets();
        assert_eq!(q.len(), 2);
        assert!((q[0].0 - 10.0).abs() < 1e-12);
        assert!(q[1].3 >= q[1].2);
        let covs = r.node_covs_sorted();
        assert!(covs[0] <= covs[1]);
        assert!((covs[0] - 0.0).abs() < 1e-12); // constant series
        let cq = r.cluster_quartet();
        assert!(cq.0 <= cq.3);
    }

    #[test]
    fn pairwise_cov_symmetry() {
        let r = report(vec![vec![10.0; 50], vec![10.0; 50], vec![100.0; 50]]);
        let m = r.pairwise_cov();
        assert!((m[0][1] - 0.0).abs() < 1e-9, "identical balanced pair");
        assert!(m[0][2] > 0.5, "imbalanced pair has high COV");
        assert!((m[0][2] - m[2][0]).abs() < 1e-12);
    }

    #[test]
    fn run_report_round_trips_through_json() {
        let mut r = report(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        r.submitted = 7;
        r.completed = 6;
        r.skipped_breakdown = vec![
            SkippedAction { kind: "Place".into(), error: "node_asleep".into(), count: 2 },
            SkippedAction { kind: "Resize".into(), error: "invalid_state".into(), count: 1 },
        ];
        r.phase_timings = vec![PhaseTiming {
            phase: "decide".into(),
            count: 400,
            p50_us: 12.0,
            p95_us: 80.5,
            p99_us: 140.25,
            mean_us: 19.875,
        }];
        r.events_processed = 12_345;
        r.events_per_sim_second = 102.875;
        r.faults = FaultStats {
            node_failures: 3,
            degradations: 1,
            probe_dropouts: 2,
            corruption_windows: 1,
            corrupted_samples: 9,
            heartbeat_delays: 4,
            rejected_samples: 5,
            gave_up: 1,
            controller_crashes: 2,
        };
        r.recovery = RecoveryStats {
            controller_crashes: 2,
            checkpoints: 5,
            replayed_events: 1234,
            recovery_wall_us: 870.5,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.skipped_breakdown, r.skipped_breakdown);
        assert_eq!(back.phase_timings, r.phase_timings);
        assert_eq!(back.faults, r.faults);
        assert_eq!(back.recovery, r.recovery);
        // Re-serializing must reproduce the exact bytes: the JSON form is
        // part of the determinism contract (`experiments --json` digests).
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn violations_per_kilo() {
        let mut r = report(vec![]);
        r.lc_completed = 2000;
        r.lc_violations = 30;
        assert!((r.violations_per_kilo() - 15.0).abs() < 1e-12);
    }
}
