//! The Kube-Knots control loop.
//!
//! Each simulation tick the orchestrator:
//!
//! 1. submits any workload arrivals that have come due;
//! 2. if the heartbeat elapsed, snapshots the cluster through the
//!    utilization aggregator, assembles the scheduler context (pending and
//!    suspended pod views + telemetry handle) and applies the scheduler's
//!    actions — skipping, never crashing on, actions that race with
//!    same-tick state changes;
//! 3. advances the cluster by one tick;
//! 4. samples every node's five metrics into the TSDB (the pyNVML probe)
//!    and records experiment metrics at the configured interval.

use crate::config::OrchestratorConfig;
use crate::metrics::{JctStats, RunReport};
use knots_sched::{Action, PendingPodView, SchedContext, Scheduler, SuspendedPodView};
use knots_sim::cluster::{Cluster, ClusterConfig};
use knots_sim::events::EventKind;
use knots_sim::pod::QosClass;
use knots_sim::time::SimTime;
use knots_telemetry::{probe, TimeSeriesDb, UtilizationAggregator};
use knots_workloads::ScheduledPod;

/// The orchestrator.
pub struct KubeKnots {
    cluster: Cluster,
    tsdb: TimeSeriesDb,
    aggregator: UtilizationAggregator,
    scheduler: Box<dyn Scheduler>,
    cfg: OrchestratorConfig,
    skipped: usize,
    util_series: Vec<Vec<f64>>,
    active_util: Vec<f64>,
    last_metric: Option<SimTime>,
    events_seen: usize,
}

impl KubeKnots {
    /// Build an orchestrator over a fresh cluster.
    pub fn new(
        mut cluster_cfg: ClusterConfig,
        scheduler: Box<dyn Scheduler>,
        cfg: OrchestratorConfig,
    ) -> Self {
        if !scheduler.wants_cluster_auto_sleep() {
            cluster_cfg.auto_sleep_after = None;
        }
        let heartbeat = cfg.heartbeat.max(cfg.tick);
        let nodes = cluster_cfg.node_models.len();
        KubeKnots {
            cluster: Cluster::new(cluster_cfg),
            tsdb: TimeSeriesDb::default(),
            aggregator: UtilizationAggregator::new(heartbeat, cfg.window),
            scheduler,
            cfg,
            skipped: 0,
            util_series: vec![Vec::new(); nodes],
            active_util: Vec::new(),
            last_metric: None,
            events_seen: 0,
        }
    }

    /// The underlying cluster (read access for tests and examples).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The telemetry store.
    pub fn tsdb(&self) -> &TimeSeriesDb {
        &self.tsdb
    }

    /// The scheduler's display name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Run the full workload `schedule` (sorted by arrival), then keep
    /// going until the cluster drains or the drain grace expires. Returns
    /// the run report.
    pub fn run_schedule(&mut self, schedule: &[ScheduledPod]) -> RunReport {
        debug_assert!(schedule.windows(2).all(|w| w[0].at <= w[1].at), "schedule must be sorted");
        let mut next = 0usize;
        let last_arrival = schedule.last().map(|s| s.at).unwrap_or(SimTime::ZERO);
        let deadline = last_arrival + self.cfg.drain_grace;

        loop {
            let now = self.cluster.now();
            // 1. Arrivals due this tick.
            while next < schedule.len() && schedule[next].at <= now {
                self.cluster.submit(schedule[next].spec.clone(), schedule[next].at);
                next += 1;
            }
            // 2. Heartbeat: scheduling round.
            if self.aggregator.due(now) {
                self.schedule_round();
            }
            // 3. Advance.
            self.cluster.step(self.cfg.tick);
            // 4. Telemetry + metrics.
            probe::sample_cluster(&self.cluster, &self.tsdb);
            self.collect_metrics();
            self.garbage_collect();

            let done = next >= schedule.len() && self.cluster.is_drained();
            if done || self.cluster.now() >= deadline {
                break;
            }
        }
        self.report(schedule.len())
    }

    /// One scheduling round: snapshot, contextualize, decide, apply.
    fn schedule_round(&mut self) {
        let snapshot = self.aggregator.query(&self.cluster);
        let pending: Vec<PendingPodView> = self
            .cluster
            .pending_queue()
            .filter_map(|id| {
                let pod = self.cluster.pod(id)?;
                let spec = pod.spec();
                Some(PendingPodView {
                    id,
                    name: spec.name.clone(),
                    app: knots_sched::context::app_key(&spec.name),
                    qos: spec.qos,
                    request_mb: spec.request_mb,
                    limit_mb: pod.limit_mb(),
                    greedy_memory: spec.greedy_memory,
                    allow_growth: spec.allow_growth,
                    arrival: pod.arrival(),
                    crashes: pod.crashes(),
                })
            })
            .collect();
        let suspended: Vec<SuspendedPodView> = self
            .cluster
            .suspended_pods()
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|id| {
                let pod = self.cluster.pod(id)?;
                Some(SuspendedPodView {
                    id,
                    app: knots_sched::context::app_key(&pod.spec().name),
                    qos: pod.spec().qos,
                    limit_mb: pod.limit_mb(),
                    attained_service_secs: pod.attained_service(),
                    arrival: pod.arrival(),
                })
            })
            .collect();

        let actions = {
            let ctx = SchedContext {
                now: self.cluster.now(),
                snapshot: &snapshot,
                pending: &pending,
                suspended: &suspended,
                tsdb: &self.tsdb,
                window: self.cfg.window,
            };
            self.scheduler.decide(&ctx)
        };
        for action in actions {
            let res = match action {
                Action::Place { pod, node } => self.cluster.place(pod, node),
                Action::Resize { pod, limit_mb } => self.cluster.resize(pod, limit_mb),
                Action::ConfigureGrowth { pod, allow } => self.cluster.configure_growth(pod, allow),
                Action::Preempt { pod } => self.cluster.preempt(pod),
                Action::Resume { pod, node } => self.cluster.resume(pod, node),
                Action::Migrate { pod, to } => self.cluster.migrate(pod, to),
                Action::Wake { node } => self.cluster.wake_node(node),
                Action::Sleep { node } => self.cluster.sleep_node(node),
            };
            if res.is_err() {
                self.skipped += 1;
            }
        }
    }

    /// Record per-node utilization at the metric interval.
    fn collect_metrics(&mut self) {
        let now = self.cluster.now();
        let due = self
            .last_metric
            .is_none_or(|t| now.saturating_since(t) >= self.cfg.metric_interval);
        if !due {
            return;
        }
        self.last_metric = Some(now);
        for (i, node) in self.cluster.nodes().iter().enumerate() {
            let util = node.last_sample().sm_util * 100.0;
            self.util_series[i].push(util);
            if node.resident_count() > 0 {
                self.active_util.push(util);
            }
        }
    }

    /// Drop TSDB series of pods that finished since the last call.
    fn garbage_collect(&mut self) {
        let events = self.cluster.events();
        for e in &events[self.events_seen..] {
            if let (Some(pod), EventKind::Completed { .. }) = (e.pod, e.kind) {
                self.tsdb.forget_pod(pod);
            }
        }
        self.events_seen = events.len();
    }

    /// Build the final report.
    fn report(&self, submitted: usize) -> RunReport {
        let mut batch = Vec::new();
        let mut lc = Vec::new();
        let mut all = Vec::new();
        let mut lc_completed = 0usize;
        let mut lc_violations = 0usize;
        for (_, pod) in self.cluster.completed_pods() {
            let t = pod.turnaround().expect("completed").as_secs_f64();
            all.push(t);
            match pod.spec().qos {
                QosClass::LatencyCritical { .. } => {
                    lc.push(t);
                    lc_completed += 1;
                    if pod.met_deadline() == Some(false) {
                        lc_violations += 1;
                    }
                }
                QosClass::Batch => batch.push(t),
            }
        }
        // Unfinished latency-critical queries already past their deadline
        // also count as violations (a scheduler cannot hide violations by
        // starving the queue).
        let now = self.cluster.now();
        for id in self.cluster.pending_queue().collect::<Vec<_>>() {
            if let Some(pod) = self.cluster.pod(id) {
                if let QosClass::LatencyCritical { deadline } = pod.spec().qos {
                    if now.saturating_since(pod.arrival()) > deadline {
                        lc_violations += 1;
                    }
                }
            }
        }

        let mut crashes = 0;
        let mut preemptions = 0;
        let mut migrations = 0;
        for e in self.cluster.events() {
            match e.kind {
                EventKind::Crashed { .. } => crashes += 1,
                EventKind::Preempted { .. } => preemptions += 1,
                EventKind::Migrated { .. } => migrations += 1,
                _ => {}
            }
        }

        RunReport {
            scheduler: self.scheduler.name().to_string(),
            duration: now.saturating_since(SimTime::ZERO),
            node_util_series: self.util_series.clone(),
            active_util_samples: self.active_util.clone(),
            submitted,
            completed: self.cluster.completed_len(),
            lc_completed,
            lc_violations,
            batch_jct: JctStats::from_secs(batch),
            lc_latency: JctStats::from_secs(lc),
            all_jct: JctStats::from_secs(all),
            energy_joules: self.cluster.total_energy_joules(),
            crashes,
            preemptions,
            migrations,
            skipped_actions: self.skipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_sched::pp::CbpPp;
    use knots_sched::resag::ResAg;
    use knots_sched::uniform::Uniform;
    use knots_sim::pod::PodSpec;
    use knots_sim::profile::ResourceProfile;
    use knots_sim::resources::GpuModel;
    use knots_sim::time::SimDuration;

    fn tiny_schedule() -> Vec<ScheduledPod> {
        (0..6)
            .map(|i| ScheduledPod {
                at: SimTime::from_millis(i * 200),
                spec: PodSpec::batch(
                    format!("job-{i}"),
                    ResourceProfile::constant(0.4, 1500.0, 1.0),
                )
                .with_request_mb(3000.0),
            })
            .collect()
    }

    fn quiet(nodes: usize) -> ClusterConfig {
        let mut c = ClusterConfig::homogeneous(nodes, GpuModel::P100);
        c.overheads.cold_start_pull = SimDuration::from_millis(200);
        c
    }

    #[test]
    fn uniform_runs_everything_to_completion() {
        let mut k = KubeKnots::new(quiet(3), Box::new(Uniform::new()), OrchestratorConfig::default());
        let report = k.run_schedule(&tiny_schedule());
        assert_eq!(report.submitted, 6);
        assert_eq!(report.completed, 6);
        assert_eq!(report.crashes, 0);
        assert!(report.batch_jct.count == 6);
        assert!(report.energy_joules > 0.0);
        assert_eq!(report.scheduler, "Uniform");
    }

    #[test]
    fn resag_packs_more_than_uniform() {
        // Same workload, fewer nodes than jobs: Res-Ag shares, Uniform
        // serializes, so Res-Ag finishes sooner.
        let run = |s: Box<dyn Scheduler>| {
            let mut k = KubeKnots::new(quiet(1), s, OrchestratorConfig::default());
            k.run_schedule(&tiny_schedule())
        };
        let uni = run(Box::new(Uniform::new()));
        let ra = run(Box::new(ResAg::new()));
        assert_eq!(uni.completed, 6);
        assert_eq!(ra.completed, 6);
        assert!(
            ra.all_jct.avg < uni.all_jct.avg,
            "sharing should beat serializing: {} vs {}",
            ra.all_jct.avg,
            uni.all_jct.avg
        );
    }

    #[test]
    fn pp_consolidates_and_sleeps_nodes() {
        let mut cfg = quiet(4);
        cfg.auto_sleep_after = Some(SimDuration::from_secs(5));
        let mut k = KubeKnots::new(cfg, Box::new(CbpPp::new()), OrchestratorConfig::default());
        let report = k.run_schedule(&tiny_schedule());
        assert_eq!(report.completed, 6);
        // Consolidation: at least one node never hosted anything.
        let idle_nodes = report
            .node_util_series
            .iter()
            .filter(|s| s.iter().all(|&u| u == 0.0))
            .count();
        assert!(idle_nodes >= 1, "PP should leave nodes idle");
    }

    #[test]
    fn report_counts_unfinished_lc_as_violations() {
        // A latency-critical pod that can never be placed (request larger
        // than the device) must still surface as a violation.
        let schedule = vec![ScheduledPod {
            at: SimTime::ZERO,
            spec: PodSpec::latency_critical("q", ResourceProfile::constant(0.5, 100.0, 0.05))
                .with_request_mb(20_000.0),
        }];
        let mut orch_cfg = OrchestratorConfig::default();
        orch_cfg.drain_grace = SimDuration::from_secs(2);
        let mut k = KubeKnots::new(quiet(1), Box::new(ResAg::new()), orch_cfg);
        let report = k.run_schedule(&schedule);
        assert_eq!(report.completed, 0);
        assert_eq!(report.lc_violations, 1);
    }

    #[test]
    fn telemetry_is_populated_during_runs() {
        let mut k = KubeKnots::new(quiet(2), Box::new(ResAg::new()), OrchestratorConfig::default());
        let _ = k.run_schedule(&tiny_schedule());
        assert!(k.tsdb().node_len(knots_sim::ids::NodeId(0)) > 0);
    }
}
