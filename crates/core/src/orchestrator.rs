//! The Kube-Knots control loop.
//!
//! The default loop is a continuous-time event core: every layer schedules
//! typed events — workload arrivals, chaos actions, aggregator heartbeats,
//! metric-grid points, the drain deadline — on a deterministic binary-heap
//! [`EventCalendar`], and the loop jumps straight from one event to the
//! next, advancing the cluster in closed form across the gap. At each
//! event instant the orchestrator:
//!
//! 1. submits any workload arrivals that have come due;
//! 2. replays injected faults due at the instant;
//! 3. on a heartbeat, snapshots the cluster through the utilization
//!    aggregator, assembles the scheduler context (pending and suspended
//!    pod views + telemetry handle) and applies the scheduler's actions —
//!    skipping, never crashing on, actions that race with same-instant
//!    state changes;
//! 4. advances the cluster to the next event, sampling every node's five
//!    metrics into the TSDB after each tick (the pyNVML probe) and
//!    recording experiment metrics at the configured interval.
//!
//! The one-tick-at-a-time loop survives as the A/B oracle behind
//! [`OrchestratorConfig::naive_ticking`], and PR 5's polled span calendar
//! as [`LoopMode::Calendar`]; all three are bit-identical at matching
//! grid points (the determinism suite and the pinned self-check digests
//! gate this on every run).

use crate::calendar::{grid_at_or_after, AppliedEvent, CoreEvent, EventCalendar};
use crate::config::{LoopMode, OrchestratorConfig};
use crate::metrics::{FaultStats, JctStats, PhaseTiming, RecoveryStats, RunReport, SkippedAction};
use knots_chaos::{ChaosAction, ChaosEngine, ChaosEngineState, FaultPlan};
use knots_obs::{Event, FieldValue, Histogram, Obs, PhaseTimers, Severity};
use knots_sched::{Action, PendingPodView, SchedContext, Scheduler, SuspendedPodView};
use knots_sim::cluster::{Cluster, ClusterConfig, ClusterState};
use knots_sim::error::SimError;
use knots_sim::events::EventKind;
use knots_sim::pod::{PodState, QosClass};
use knots_sim::time::SimTime;
use knots_telemetry::{probe, TimeSeriesDb, TsdbConfig, TsdbState, UtilizationAggregator};
use knots_trace::{LifecycleTracker, PodMeta, Tracer, Track};
use knots_workloads::{next_arrival, ScheduledPod};

/// Stable label for an action's kind, used in metrics and audit events.
fn action_kind(a: &Action) -> &'static str {
    match a {
        Action::Place { .. } => "Place",
        Action::Resize { .. } => "Resize",
        Action::ConfigureGrowth { .. } => "ConfigureGrowth",
        Action::Preempt { .. } => "Preempt",
        Action::Resume { .. } => "Resume",
        Action::Migrate { .. } => "Migrate",
        Action::Wake { .. } => "Wake",
        Action::Sleep { .. } => "Sleep",
    }
}

/// Stable label for a simulator error variant.
fn error_label(e: &SimError) -> &'static str {
    match e {
        SimError::UnknownPod(_) => "unknown_pod",
        SimError::UnknownNode(_) => "unknown_node",
        SimError::InvalidState { .. } => "invalid_state",
        SimError::ExceedsDevice { .. } => "exceeds_device",
        SimError::NodeAsleep(_) => "node_asleep",
        SimError::NodeFailed(_) => "node_failed",
        SimError::InvalidResize { .. } => "invalid_resize",
    }
}

/// The orchestrator.
pub struct KubeKnots {
    cluster: Cluster,
    tsdb: TimeSeriesDb,
    aggregator: UtilizationAggregator,
    scheduler: Box<dyn Scheduler>,
    cfg: OrchestratorConfig,
    obs: Obs,
    timers: PhaseTimers,
    chaos: Option<ChaosEngine>,
    chaos_buf: Vec<ChaosAction>,
    skipped: usize,
    util_series: Vec<Vec<f64>>,
    active_util: Vec<f64>,
    next_metric: Option<SimTime>,
    events_seen: usize,
    tracer: Tracer,
    lifecycle: LifecycleTracker,
    trace_seen: usize,
    round: u64,
    event_counts: [u64; 5],
    /// Per-round heartbeat latency, accumulated locally and merged into
    /// the metrics registry once per run (`knots_heartbeat_latency_us`).
    hb_latency: Histogram,
    /// Live state of a begun event-queue loop, present between
    /// [`KubeKnots::begin`] (or a resume) and completion. Lifting the
    /// loop's locals onto the orchestrator is what makes the loop pausable
    /// at any event boundary.
    loop_state: Option<EventLoopState>,
    /// Write-ahead journal of applied events, recorded while enabled (the
    /// recovery harness drains it into its WAL between checkpoints).
    journal: Option<Vec<AppliedEvent>>,
}

/// The event-queue loop's locals, lifted out of `run_events` so the loop
/// can stop at an event boundary with its full state on the orchestrator.
struct EventLoopState {
    cal: EventCalendar,
    /// Cursor into the workload schedule: first arrival not yet submitted.
    next: usize,
    deadline: SimTime,
}

/// The complete dynamic state of a paused event-queue run — the payload of
/// the recovery crate's snapshots. Only dynamic state travels here; static
/// configuration is re-supplied to [`KubeKnots::resume`]. Every field uses
/// vec/tuple shapes the serde shim deserializes (analyzer rule R1 keeps
/// `HashMap`/`HashSet`/`Instant` out of this reachability closure).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct OrchestratorState {
    /// Cluster state (nodes, pods, queues, relaunch schedule, energy).
    pub cluster: ClusterState,
    /// Telemetry store state (RLE rings, rejection counters).
    pub tsdb: TsdbState,
    /// The aggregator's armed heartbeat (its only dynamic field).
    pub aggregator_next_due: Option<SimTime>,
    /// Scheduler-specific learned state ([`Scheduler::snapshot_state`]).
    pub scheduler: serde::Value,
    /// Chaos-engine replay position, if an engine was attached.
    pub chaos: Option<ChaosEngineState>,
    /// Calendar entries in pop order ([`EventCalendar::entries`]).
    pub calendar: Vec<(SimTime, CoreEvent)>,
    /// Cursor into the workload schedule: first arrival not yet submitted.
    pub next_arrival: u64,
    /// The run's drain deadline.
    pub deadline: SimTime,
    /// Actions skipped so far.
    pub skipped: u64,
    /// Per-node utilization series collected so far.
    pub util_series: Vec<Vec<f64>>,
    /// Active-GPU utilization samples collected so far.
    pub active_util: Vec<f64>,
    /// Next armed metric-grid instant.
    pub next_metric: Option<SimTime>,
    /// Cluster events already garbage-collected / folded.
    pub events_seen: u64,
    /// Scheduling rounds run so far.
    pub round: u64,
    /// Per-class processed-event counters (priority order, 5 entries).
    pub event_counts: Vec<u64>,
    /// Shard count of the cluster core that produced this state. Static
    /// configuration, recorded so resuming under a different partitioning
    /// is a loud error instead of a silent re-shard (digests are
    /// shard-invariant, but the snapshot format guards it anyway).
    pub shards: u64,
}

impl KubeKnots {
    /// Build an orchestrator over a fresh cluster.
    pub fn new(
        mut cluster_cfg: ClusterConfig,
        scheduler: Box<dyn Scheduler>,
        cfg: OrchestratorConfig,
    ) -> Self {
        if !scheduler.wants_cluster_auto_sleep() {
            cluster_cfg.auto_sleep_after = None;
        }
        let heartbeat = cfg.heartbeat.max(cfg.tick);
        let nodes = cluster_cfg.node_models.len();
        let cluster = Cluster::new(cluster_cfg);
        // The TSDB partitions along the cluster's shard layout so each
        // shard's probe lane owns its rings (single-shard → one partition,
        // same bits either way).
        let tsdb = TimeSeriesDb::partitioned(TsdbConfig::default(), cluster.shard_layout());
        KubeKnots {
            cluster,
            tsdb,
            aggregator: UtilizationAggregator::new(heartbeat, cfg.window),
            scheduler,
            cfg,
            obs: Obs::disabled(),
            timers: PhaseTimers::new(),
            chaos: None,
            chaos_buf: Vec::new(),
            skipped: 0,
            util_series: vec![Vec::new(); nodes],
            active_util: Vec::new(),
            next_metric: None,
            events_seen: 0,
            tracer: Tracer::disabled(),
            lifecycle: LifecycleTracker::new(),
            trace_seen: 0,
            round: 0,
            event_counts: [0; 5],
            hb_latency: Histogram::latency_us(),
            loop_state: None,
            journal: None,
        }
    }

    /// Attach an observability bundle (trace recorder + metrics registry).
    /// The configs stay `Copy`; the handle rides on the orchestrator itself.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The attached observability bundle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Attach a causal tracer. Like `with_obs`, a disabled tracer keeps
    /// every emission site down to one branch, so untraced runs stay
    /// bit-identical to runs built without tracing.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attach a fault-injection engine. An inert engine (empty plan) is
    /// dropped on the spot, so fault-free runs take exactly the fault-free
    /// code path and stay bit-identical to runs built without chaos.
    pub fn with_chaos(mut self, engine: ChaosEngine) -> Self {
        self.chaos = (!engine.is_inert()).then_some(engine);
        self
    }

    /// Fault-injection totals so far, when an engine is attached.
    pub fn fault_counts(&self) -> Option<knots_chaos::FaultCounts> {
        self.chaos.as_ref().map(|e| e.counts())
    }

    /// The control loop's per-phase wall-clock timers.
    pub fn phase_timers(&self) -> &PhaseTimers {
        &self.timers
    }

    /// The underlying cluster (read access for tests and examples).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The telemetry store.
    pub fn tsdb(&self) -> &TimeSeriesDb {
        &self.tsdb
    }

    /// The scheduler's display name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Run the full workload `schedule` (sorted by arrival), then keep
    /// going until the cluster drains or the drain grace expires. Returns
    /// the run report.
    pub fn run_schedule(&mut self, schedule: &[ScheduledPod]) -> RunReport {
        debug_assert!(schedule.windows(2).all(|w| w[0].at <= w[1].at), "schedule must be sorted");
        match self.cfg.effective_mode() {
            LoopMode::EventQueue => self.run_events(schedule),
            LoopMode::Naive | LoopMode::Calendar => self.run_ticked(schedule),
        }
        if self.tracer.enabled() {
            self.trace_scan();
            self.lifecycle.flush(self.cluster.now().as_micros(), &self.tracer);
        }
        self.report(schedule.len())
    }

    /// Start an event-queue run without driving it: seed the calendar and
    /// park the loop at t=0. The recovery harness uses `begin` + [`drive`]
    /// instead of [`run_schedule`] so it can checkpoint between drives.
    ///
    /// [`drive`]: KubeKnots::drive
    /// [`run_schedule`]: KubeKnots::run_schedule
    pub fn begin(&mut self, schedule: &[ScheduledPod]) {
        assert_eq!(
            self.cfg.effective_mode(),
            LoopMode::EventQueue,
            "pausable driving requires the event-queue loop"
        );
        debug_assert!(schedule.windows(2).all(|w| w[0].at <= w[1].at), "schedule must be sorted");
        self.begin_events(schedule);
    }

    /// Drive a begun (or resumed) run until it completes (`true`) or until
    /// the first event boundary at or past `stop` (`false`, paused).
    pub fn drive(&mut self, schedule: &[ScheduledPod], stop: Option<SimTime>) -> bool {
        self.drive_events(schedule, stop)
    }

    /// Build the run report for a run driven via [`KubeKnots::begin`] /
    /// [`KubeKnots::drive`] (which bypass [`KubeKnots::run_schedule`]'s
    /// reporting).
    pub fn report_now(&self, submitted: usize) -> RunReport {
        self.report(submitted)
    }

    /// Start recording every applied calendar event into an in-memory
    /// journal ([`KubeKnots::take_journal`] drains it). The recovery
    /// harness appends the drained entries to its write-ahead log and uses
    /// them as a divergence fence during replay.
    pub fn enable_journal(&mut self) {
        self.journal = Some(Vec::new());
    }

    /// Drain the journal recorded since [`KubeKnots::enable_journal`] or
    /// the previous drain. Empty when journaling is off.
    pub fn take_journal(&mut self) -> Vec<AppliedEvent> {
        self.journal.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Capture the complete dynamic state of a paused event-queue run.
    /// `None` unless the loop was begun via [`KubeKnots::begin`] (or a
    /// resume). Read-only: capturing never perturbs the run.
    ///
    /// Configuration (cluster topology, orchestrator config, scheduler
    /// identity, workload schedule, fault plan) is *not* captured — it is
    /// re-supplied to [`KubeKnots::resume`], which keeps snapshots small
    /// and makes config drift a loud error instead of a silent fork.
    /// There is no live RNG to capture: workload schedules and fault plans
    /// are pre-generated, so the loop itself is deterministic state
    /// machine + calendar.
    pub fn pause_state(&self) -> Option<OrchestratorState> {
        let st = self.loop_state.as_ref()?;
        Some(OrchestratorState {
            cluster: self.cluster.snapshot_state(),
            tsdb: self.tsdb.snapshot_state(),
            aggregator_next_due: self.aggregator.next_due(),
            scheduler: self.scheduler.snapshot_state(),
            chaos: self.chaos.as_ref().map(|e| e.snapshot_state()),
            calendar: st.cal.entries(),
            next_arrival: st.next as u64,
            deadline: st.deadline,
            skipped: self.skipped as u64,
            util_series: self.util_series.clone(),
            active_util: self.active_util.clone(),
            next_metric: self.next_metric,
            events_seen: self.events_seen as u64,
            round: self.round,
            event_counts: self.event_counts.to_vec(),
            shards: self.cluster.shards() as u64,
        })
    }

    /// Rebuild a paused orchestrator from a captured state plus the run's
    /// static configuration. The scheduler must be the same policy that
    /// produced the state (its learned state is restored via
    /// [`Scheduler::restore_state`]); `chaos_plan` must be the original
    /// plan when the state carries a chaos cursor. Wall-clock observers
    /// (phase timers, heartbeat-latency histogram, obs, tracer) restart
    /// empty — they describe the process, not the simulation. The per-round
    /// `StatsCache` is built fresh each heartbeat, so restore invalidates
    /// it by construction.
    pub fn resume(
        mut cluster_cfg: ClusterConfig,
        mut scheduler: Box<dyn Scheduler>,
        cfg: OrchestratorConfig,
        chaos_plan: Option<FaultPlan>,
        state: OrchestratorState,
    ) -> Result<Self, serde::Error> {
        if !scheduler.wants_cluster_auto_sleep() {
            cluster_cfg.auto_sleep_after = None;
        }
        scheduler.restore_state(&state.scheduler)?;
        let heartbeat = cfg.heartbeat.max(cfg.tick);
        let mut aggregator = UtilizationAggregator::new(heartbeat, cfg.window);
        aggregator.restore_next_due(state.aggregator_next_due);
        let chaos = match state.chaos {
            None => None,
            Some(cs) => {
                let plan = chaos_plan.ok_or_else(|| {
                    serde::Error::custom("state carries a chaos cursor but no plan was supplied")
                })?;
                Some(ChaosEngine::from_state(plan, cs))
            }
        };
        let mut event_counts = [0u64; 5];
        for (slot, v) in event_counts.iter_mut().zip(state.event_counts.iter()) {
            *slot = *v;
        }
        let events_seen = state.events_seen as usize;
        let cluster = Cluster::from_state(cluster_cfg, state.cluster);
        if cluster.shards() as u64 != state.shards {
            return Err(serde::Error::custom(format!(
                "snapshot was taken with {} shard(s) but the supplied config yields {}",
                state.shards,
                cluster.shards()
            )));
        }
        let tsdb =
            TimeSeriesDb::from_state_partitioned(TsdbConfig::default(), cluster.shard_layout(), state.tsdb);
        Ok(KubeKnots {
            cluster,
            tsdb,
            aggregator,
            scheduler,
            cfg,
            obs: Obs::disabled(),
            timers: PhaseTimers::new(),
            chaos,
            chaos_buf: Vec::new(),
            skipped: state.skipped as usize,
            util_series: state.util_series,
            active_util: state.active_util,
            next_metric: state.next_metric,
            events_seen,
            tracer: Tracer::disabled(),
            lifecycle: LifecycleTracker::new(),
            trace_seen: events_seen,
            round: state.round,
            event_counts,
            hb_latency: Histogram::latency_us(),
            loop_state: Some(EventLoopState {
                cal: EventCalendar::from_entries(&state.calendar),
                next: state.next_arrival as usize,
                deadline: state.deadline,
            }),
            journal: None,
        })
    }

    /// The tick-grid loop: the `naive_ticking` oracle (one tick at a time)
    /// and PR 5's span calendar (polled `next_due()` hints, `span_ticks`
    /// returns 1 for the oracle) share this body. Kept as the A/B
    /// reference the event core is digest-checked against.
    fn run_ticked(&mut self, schedule: &[ScheduledPod]) {
        let mut next = 0usize;
        let last_arrival = schedule.last().map(|s| s.at).unwrap_or(SimTime::ZERO);
        let deadline = last_arrival + self.cfg.drain_grace;

        loop {
            let now = self.cluster.now();
            // 1. Arrivals due this tick.
            while next < schedule.len() && schedule[next].at <= now {
                self.cluster.submit(schedule[next].spec.clone(), schedule[next].at);
                next += 1;
            }
            // 1b. Injected faults due this tick (before the heartbeat, so
            // the scheduler sees the post-fault world the same round).
            if self.chaos.is_some() {
                self.apply_chaos(now);
            }
            // 2. Heartbeat: scheduling round.
            if self.aggregator.due(now) {
                self.heartbeat_round(now);
            }
            // 3+4. Advance and probe. The span calendar asks every layer
            // for its next due instant and jumps there in one span; a span
            // of one tick takes the plain path, which is also what
            // `naive_ticking` forces for the A/B determinism harness.
            let k = self.span_ticks(schedule, next, deadline);
            let arrivals_done = next >= schedule.len();
            if k <= 1 {
                self.step_and_probe();
            } else {
                self.advance_span(k, arrivals_done);
            }
            self.collect_metrics();
            self.garbage_collect();
            if self.tracer.enabled() {
                self.trace_scan();
            }

            let done = arrivals_done && self.cluster.is_drained();
            if done || self.cluster.now() >= deadline {
                break;
            }
        }
    }

    /// The event-queue loop: producers schedule their next occurrence on
    /// the calendar, the loop pops due events in `(time, priority, seq)`
    /// order and jumps the cluster straight to the next instant anything
    /// can happen. Every event time is snapped to the tick grid at enqueue
    /// (`grid_at_or_after`), so each jump is an exact number of ticks and
    /// the trajectory is bit-identical to the oracle's: within one instant
    /// the oracle runs previous-iteration metric collection first, then
    /// arrivals, chaos and the heartbeat — exactly the calendar's priority
    /// order — and it only ever observes layers at grid points.
    fn run_events(&mut self, schedule: &[ScheduledPod]) {
        self.begin_events(schedule);
        let done = self.drive_events(schedule, None);
        debug_assert!(done, "an unbounded drive runs to completion");
    }

    /// Seed the calendar and lift the loop locals onto `self`, without
    /// driving: one self-rescheduling chain per producer — each handler
    /// pops exactly one entry and schedules at most one successor, so the
    /// heap never holds more than one event per class.
    fn begin_events(&mut self, schedule: &[ScheduledPod]) {
        let last_arrival = schedule.last().map(|s| s.at).unwrap_or(SimTime::ZERO);
        let deadline = last_arrival + self.cfg.drain_grace;
        let tick = self.cfg.tick;
        let tick_us = tick.as_micros().max(1);
        let start = self.cluster.now();

        let mut cal = EventCalendar::new();
        cal.schedule(
            grid_at_or_after(self.aggregator.next_due().unwrap_or(start), tick_us),
            CoreEvent::Heartbeat,
        );
        if let Some(first) = schedule.first() {
            cal.schedule(grid_at_or_after(first.at, tick_us), CoreEvent::Arrival);
        }
        if let Some(t) = self.chaos.as_ref().and_then(|e| e.next_due()) {
            cal.schedule(grid_at_or_after(t, tick_us), CoreEvent::Chaos);
        }
        // The oracle's unarmed metric grid first fires at the end of the
        // first tick; collect_metrics then anchors it to the interval grid.
        cal.schedule(start + tick, CoreEvent::MetricGrid);
        cal.schedule(grid_at_or_after(deadline, tick_us), CoreEvent::DrainDeadline);
        self.loop_state = Some(EventLoopState { cal, next: 0, deadline });
    }

    /// Drive a begun (or resumed) event loop. With `stop: None` runs to
    /// completion and returns `true`; with a stop time, pauses at the
    /// first event boundary at or past it and returns `false`, leaving
    /// every loop local on `self` so [`KubeKnots::pause_state`] can
    /// capture it.
    fn drive_events(&mut self, schedule: &[ScheduledPod], stop: Option<SimTime>) -> bool {
        // knots-allow: P1 -- both callers (run_events, drive) establish loop_state via begin_events first; driving an un-begun loop is a harness bug worth aborting on
        let mut st = self.loop_state.take().expect("begin_events before drive_events");
        let tick = self.cfg.tick;
        let tick_us = tick.as_micros().max(1);

        let done = loop {
            let now = self.cluster.now();
            // The pause boundary: *before* popping this instant's events,
            // so a resumed loop re-enters exactly here with the same
            // calendar and processes the instant identically.
            if stop.is_some_and(|s| now >= s) {
                break false;
            }
            // Start-of-instant control events (arrivals, then chaos, then
            // the heartbeat — `pop_due` yields priority order).
            while let Some(kind) = st.cal.pop_due(now) {
                self.handle_event(kind, now, schedule, &mut st.next, &mut st.cal);
            }
            // Jump to the next event: at least one tick, never past one.
            // Nothing can fire strictly between grid-snapped events, so
            // the span is closed-form; it still stops early on the exact
            // tick the cluster drains.
            let arrivals_done = st.next >= schedule.len();
            let target = st.cal.peek_time().map_or(now + tick, |t| t.max(now + tick));
            let k = (target.as_micros() - now.as_micros()) / tick_us;
            if k <= 1 {
                self.step_and_probe();
            } else {
                self.advance_span(k, arrivals_done);
            }
            // End-of-instant work where the jump landed: the metric grid
            // fires before any control event due at the same instant
            // (those pop at the top of the next iteration), matching the
            // oracle's step → collect → break-check → next-tick order.
            let now = self.cluster.now();
            while let Some((t, CoreEvent::MetricGrid)) = st.cal.peek() {
                if t > now {
                    break;
                }
                st.cal.pop();
                self.handle_event(CoreEvent::MetricGrid, now, schedule, &mut st.next, &mut st.cal);
            }
            self.garbage_collect();
            if self.tracer.enabled() {
                self.trace_scan();
            }

            if arrivals_done && self.cluster.is_drained() {
                break true;
            }
            if now >= st.deadline {
                self.event_counts[CoreEvent::DrainDeadline.priority() as usize] += 1;
                break true;
            }
        };
        self.loop_state = Some(st);
        done
    }

    /// Apply one calendar event at `now` and schedule the producer's next
    /// occurrence. Handlers advance bookkeeping in closed form: due times
    /// are snapped to the tick grid once, at enqueue (`grid_at_or_after`)
    /// — analyzer rule E1 keeps tick quantization and wall clocks out of
    /// this dispatch.
    fn handle_event(
        &mut self,
        kind: CoreEvent,
        now: SimTime,
        schedule: &[ScheduledPod],
        next: &mut usize,
        cal: &mut EventCalendar,
    ) {
        self.event_counts[kind.priority() as usize] += 1;
        if let Some(journal) = self.journal.as_mut() {
            journal.push(AppliedEvent { at: now, kind });
        }
        let tick_us = self.cfg.tick.as_micros().max(1);
        match kind {
            CoreEvent::MetricGrid => {
                self.collect_metrics();
                if let Some(t) = self.next_metric {
                    cal.schedule(grid_at_or_after(t, tick_us), CoreEvent::MetricGrid);
                }
            }
            CoreEvent::Arrival => {
                while *next < schedule.len() && schedule[*next].at <= now {
                    self.cluster.submit(schedule[*next].spec.clone(), schedule[*next].at);
                    *next += 1;
                }
                if let Some(at) = next_arrival(schedule, *next) {
                    cal.schedule(grid_at_or_after(at, tick_us), CoreEvent::Arrival);
                }
            }
            CoreEvent::Chaos => {
                self.apply_chaos(now);
                if let Some(t) = self.chaos.as_ref().and_then(|e| e.next_due()) {
                    cal.schedule(grid_at_or_after(t, tick_us), CoreEvent::Chaos);
                }
            }
            CoreEvent::Heartbeat => {
                // Lazy revalidation: a chaos heartbeat delay may have
                // pushed the due time past this entry after it was
                // enqueued. Skip the stale entry and chase the new time.
                if self.aggregator.due(now) {
                    self.heartbeat_round(now);
                }
                if let Some(t) = self.aggregator.next_due() {
                    cal.schedule(grid_at_or_after(t, tick_us), CoreEvent::Heartbeat);
                }
            }
            CoreEvent::DrainDeadline => {}
        }
    }

    /// One heartbeat: trace the instant, run the scheduling round, record
    /// the round's wall-clock latency.
    fn heartbeat_round(&mut self, now: SimTime) {
        // knots-allow: D1 -- wall-clock heartbeat latency is an observability metric only; it never feeds back into simulation state
        let t0 = std::time::Instant::now();
        let heartbeat_span = if self.tracer.enabled() {
            self.tracer.record_instant(
                Track::Control,
                "agg.heartbeat",
                now.as_micros(),
                None,
                vec![],
            )
        } else {
            None
        };
        self.schedule_round(heartbeat_span);
        self.hb_latency.observe(t0.elapsed().as_secs_f64() * 1e6);
    }

    /// Advance one tick and probe every node into the TSDB — the unit
    /// step every loop implementation shares (a jump of one tick and the
    /// oracle's every-tick path are the same code).
    fn step_and_probe(&mut self) {
        {
            let _span = self.timers.span("step");
            self.cluster.step(self.cfg.tick);
        }
        let _span = self.timers.span("probe");
        match self.chaos.as_mut() {
            None => {
                probe::sample_cluster(&self.cluster, &self.tsdb);
            }
            Some(engine) => {
                let now = self.cluster.now();
                let dropped = probe::sample_cluster_with(&self.cluster, &self.tsdb, |node, s| {
                    if engine.probe_dropped(node, now) {
                        None
                    } else {
                        Some(engine.corrupt_sample(node, now, s))
                    }
                });
                if dropped > 0 {
                    self.obs.metrics.add("knots_probe_dropped_total", &[], dropped);
                }
                self.obs.metrics.set_gauge(
                    "knots_telemetry_rejected_samples_total",
                    &[],
                    self.tsdb.rejected_total() as f64,
                );
            }
        }
        if self.tracer.enabled() {
            self.tracer.record_instant(
                Track::Control,
                "probe.round",
                self.cluster.now().as_micros(),
                None,
                vec![],
            );
        }
    }

    /// Fold cluster events recorded since the last scan into lifecycle
    /// spans. Runs once per loop iteration when tracing is on, so the span
    /// stream stays roughly chronological with the system spans.
    fn trace_scan(&mut self) {
        let events = self.cluster.events();
        for e in &events[self.trace_seen..] {
            let meta = e.pod.and_then(|id| self.cluster.pod(id)).map(|p| PodMeta {
                arrival_us: p.arrival().as_micros(),
                checkpoint_fraction: p.spec().checkpoint_fraction,
            });
            self.lifecycle.on_event(e, meta, &self.tracer);
        }
        self.trace_seen = events.len();
    }

    /// How many ticks the loop may advance before the next instant at which
    /// any layer can act: the armed heartbeat, the metric grid, the next
    /// workload arrival, the next chaos action, a cluster-level event
    /// (relaunch expiry, auto-sleep deadline, pod completion/phase hint) or
    /// the drain deadline. Everything due *at or before* now clamps to a
    /// single tick, as does an unarmed heartbeat/metric grid, so the
    /// calendar can never jump over a trigger — jumping *to* one is exact
    /// because in-between ticks are provably inert at the orchestrator
    /// level.
    fn span_ticks(&self, schedule: &[ScheduledPod], next: usize, deadline: SimTime) -> u64 {
        if self.cfg.effective_mode() != LoopMode::Calendar {
            return 1;
        }
        let Some(heartbeat) = self.aggregator.next_due() else { return 1 };
        let Some(metric) = self.next_metric else { return 1 };
        let now_us = self.cluster.now().as_micros();
        let tick_us = self.cfg.tick.as_micros().max(1);
        let ticks_until = |t: SimTime| -> u64 {
            let t_us = t.as_micros();
            if t_us <= now_us {
                1
            } else {
                (t_us - now_us).div_ceil(tick_us)
            }
        };
        let mut k = ticks_until(heartbeat).min(ticks_until(metric)).min(ticks_until(deadline));
        if let Some(at) = next_arrival(schedule, next) {
            k = k.min(ticks_until(at));
        }
        if let Some(engine) = self.chaos.as_ref() {
            if let Some(t) = engine.next_due() {
                k = k.min(ticks_until(t));
            }
        }
        if let Some(t) = self.cluster.next_due(self.cfg.tick) {
            k = k.min(ticks_until(t));
        }
        k.max(1)
    }

    /// Advance `k` ticks in one cluster span, probing after every tick so
    /// the TSDB ends up byte-identical to `k` single steps. Quiet nodes
    /// (failed or hosting nothing) skip per-tick stepping and have their
    /// constant samples backfilled through the ordinary push path after the
    /// span; under a chaos plan probe behaviour can differ per node per
    /// tick, so batching is disabled and every node steps normally. The
    /// span stops on the exact tick the cluster drains (`on_tick` → false)
    /// so the reported duration matches naive ticking. The "step" timer
    /// covers the whole span including the in-span probes; the nested
    /// "probe" spans still account them separately.
    fn advance_span(&mut self, k: u64, arrivals_done: bool) {
        let tick = self.cfg.tick;
        let start = self.cluster.now();
        let quiet: Vec<bool> = if self.chaos.is_some() {
            Vec::new()
        } else {
            self.cluster.nodes().iter().map(|n| n.is_failed() || n.resident_count() == 0).collect()
        };
        let mut dropped_total = 0u64;
        let mut probe_us = 0.0f64;
        let executed = {
            let timers = &self.timers;
            let tsdb = &self.tsdb;
            let quiet_ref = &quiet;
            let mut engine = self.chaos.as_mut();
            let dropped = &mut dropped_total;
            let probe_us = &mut probe_us;
            let _span = timers.span("step");
            self.cluster.step_span(tick, k, quiet_ref, |c, activity| {
                // knots-allow: D1 -- wall-clock probe-phase accounting (observability only); summed per span and recorded once per burst
                let t0 = std::time::Instant::now();
                let now = c.now();
                let mut w = tsdb.writer();
                for (i, node) in c.nodes().iter().enumerate() {
                    if node.is_failed() || quiet_ref.get(i).copied().unwrap_or(false) {
                        continue;
                    }
                    let sample = match engine.as_deref_mut() {
                        None => node.last_sample(),
                        Some(e) => {
                            if e.probe_dropped(node.id(), now) {
                                *dropped += 1;
                                continue;
                            }
                            e.corrupt_sample(node.id(), now, node.last_sample())
                        }
                    };
                    w.push_node(node.id(), sample);
                    for (pod_id, pod) in node.residents() {
                        if matches!(pod.state(), PodState::Running) {
                            w.push_pod(pod_id, sample.at, pod.last_usage());
                        }
                    }
                }
                drop(w);
                *probe_us += t0.elapsed().as_secs_f64() * 1e6;
                !(arrivals_done && activity && c.is_drained())
            })
        };
        // One "probe" record per burst: the in-span probes are one batched
        // round, and a single histogram record per span keeps the timer's
        // own cost out of the measured loop.
        self.timers.record_us("probe", probe_us);
        if !quiet.is_empty() && executed > 0 {
            let mut w = self.tsdb.writer();
            for (i, node) in self.cluster.nodes().iter().enumerate() {
                if quiet[i] && !node.is_failed() {
                    w.push_node_span(node.id(), node.last_sample(), start, tick, executed);
                }
            }
        }
        if dropped_total > 0 {
            self.obs.metrics.add("knots_probe_dropped_total", &[], dropped_total);
        }
        if self.chaos.is_some() {
            self.obs.metrics.set_gauge(
                "knots_telemetry_rejected_samples_total",
                &[],
                self.tsdb.rejected_total() as f64,
            );
        }
        if self.tracer.enabled() {
            self.tracer.record_complete(
                Track::Control,
                "pool.batch",
                start.as_micros(),
                self.cluster.now().as_micros(),
                None,
                vec![
                    ("ticks", FieldValue::U64(executed)),
                    ("quiet", FieldValue::U64(quiet.iter().filter(|q| **q).count() as u64)),
                ],
            );
        }
    }

    /// Replay every chaos action due at `now` against the cluster. Errors
    /// (a plan targeting a node the topology doesn't have, a double fail)
    /// are counted and skipped, never fatal: injected faults must not be
    /// able to crash the control loop they are stressing.
    fn apply_chaos(&mut self, now: SimTime) {
        let mut actions = std::mem::take(&mut self.chaos_buf);
        if let Some(engine) = self.chaos.as_mut() {
            engine.actions_due(now, &mut actions);
        }
        let now_us = now.as_micros();
        for a in &actions {
            let (kind, res) = match *a {
                ChaosAction::FailNode(n) => ("fail_node", self.cluster.fail_node(n).map(|_| ())),
                ChaosAction::RecoverNode(n) => ("recover_node", self.cluster.recover_node(n)),
                ChaosAction::DegradeNode { node, frac } => {
                    ("degrade_node", self.cluster.degrade_node(node, frac))
                }
                ChaosAction::RestoreNode(n) => ("restore_node", self.cluster.degrade_node(n, 0.0)),
                ChaosAction::DelayHeartbeat(d) => {
                    self.aggregator.postpone(now, d);
                    ("delay_heartbeat", Ok(()))
                }
            };
            match res {
                Ok(()) => {
                    self.obs.metrics.inc("knots_chaos_actions_total", &[("kind", kind)]);
                    self.obs.recorder.record(
                        Event::new("chaos", "chaos.inject")
                            .at(now_us)
                            .severity(Severity::Warn)
                            .str("kind", kind),
                    );
                    if self.tracer.enabled() {
                        self.tracer.record_instant(
                            Track::Control,
                            "chaos.inject",
                            now_us,
                            None,
                            vec![("kind", FieldValue::Str(kind.to_string()))],
                        );
                    }
                }
                Err(e) => {
                    self.obs.metrics.inc(
                        "knots_chaos_actions_skipped_total",
                        &[("kind", kind), ("error", error_label(&e))],
                    );
                }
            }
        }
        self.chaos_buf = actions;
    }

    /// One scheduling round: snapshot, contextualize, decide, apply.
    /// `trace_parent` is the heartbeat instant that triggered this round.
    fn schedule_round(&mut self, trace_parent: Option<u64>) {
        let snapshot_span = self.timers.span("snapshot");
        let snapshot = self.aggregator.query(&self.cluster);
        let pending: Vec<PendingPodView> = self
            .cluster
            .pending_queue()
            .filter_map(|id| {
                let pod = self.cluster.pod(id)?;
                let spec = pod.spec();
                Some(PendingPodView {
                    id,
                    name: spec.name.clone(),
                    app: knots_sched::context::app_key(&spec.name),
                    qos: spec.qos,
                    request_mb: spec.request_mb,
                    limit_mb: pod.limit_mb(),
                    greedy_memory: spec.greedy_memory,
                    allow_growth: spec.allow_growth,
                    arrival: pod.arrival(),
                    crashes: pod.crashes(),
                })
            })
            .collect();
        let suspended: Vec<SuspendedPodView> = self
            .cluster
            .suspended_pods()
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|id| {
                let pod = self.cluster.pod(id)?;
                Some(SuspendedPodView {
                    id,
                    app: knots_sched::context::app_key(&pod.spec().name),
                    qos: pod.spec().qos,
                    limit_mb: pod.limit_mb(),
                    attained_service_secs: pod.attained_service(),
                    arrival: pod.arrival(),
                })
            })
            .collect();
        drop(snapshot_span);
        self.obs.metrics.set_gauge("knots_pending_pods", &[], pending.len() as f64);

        let actions = {
            let _span = self.timers.span("decide");
            let ctx = SchedContext {
                now: self.cluster.now(),
                snapshot: &snapshot,
                pending: &pending,
                suspended: &suspended,
                tsdb: &self.tsdb,
                window: self.cfg.window,
                recorder: Some(&self.obs.recorder),
                cache: knots_sched::StatsCache::new(),
                freshness: self.cfg.freshness,
                shards: self.cluster.shards(),
            };
            let actions = self.scheduler.decide(&ctx);
            // The cache dies with the round; fold its effectiveness into the
            // metrics registry before it goes.
            let cs = ctx.cache.stats();
            self.obs.metrics.add("knots_stats_cache_hits_total", &[], cs.hits);
            self.obs.metrics.add("knots_stats_cache_misses_total", &[], cs.misses);
            actions
        };
        let round_span = if self.tracer.enabled() {
            self.round += 1;
            self.tracer.record_instant(
                Track::Control,
                "sched.round",
                self.cluster.now().as_micros(),
                trace_parent,
                vec![
                    ("round", FieldValue::U64(self.round)),
                    ("scheduler", FieldValue::Str(self.scheduler.name().to_string())),
                    ("pending", FieldValue::U64(pending.len() as u64)),
                    ("actions", FieldValue::U64(actions.len() as u64)),
                ],
            )
        } else {
            None
        };
        let _span = self.timers.span("apply");
        let now_us = self.cluster.now().as_micros();
        for action in actions {
            let kind = action_kind(&action);
            let audit_pod = match &action {
                Action::Place { pod, .. }
                | Action::Resize { pod, .. }
                | Action::ConfigureGrowth { pod, .. }
                | Action::Preempt { pod }
                | Action::Resume { pod, .. }
                | Action::Migrate { pod, .. } => Some(pod.0),
                Action::Wake { .. } | Action::Sleep { .. } => None,
            };
            // Memory-harvesting accounting needs the pod's request before the
            // action lands: a Resize below request is harvested headroom.
            let mb_delta = match &action {
                Action::Place { pod, .. } => {
                    self.cluster.pod(*pod).map(|p| ("requested", p.spec().request_mb))
                }
                Action::Resize { pod, limit_mb } => self
                    .cluster
                    .pod(*pod)
                    .map(|p| ("harvested", (p.spec().request_mb - limit_mb).max(0.0))),
                _ => None,
            };
            let res = match action {
                Action::Place { pod, node } => self.cluster.place(pod, node),
                Action::Resize { pod, limit_mb } => self.cluster.resize(pod, limit_mb),
                Action::ConfigureGrowth { pod, allow } => self.cluster.configure_growth(pod, allow),
                Action::Preempt { pod } => self.cluster.preempt(pod),
                Action::Resume { pod, node } => self.cluster.resume(pod, node),
                Action::Migrate { pod, to } => self.cluster.migrate(pod, to),
                Action::Wake { node } => self.cluster.wake_node(node),
                Action::Sleep { node } => self.cluster.sleep_node(node),
            };
            match res {
                Ok(()) => {
                    self.obs.metrics.inc("knots_actions_applied_total", &[("kind", kind)]);
                    // The audit link: a pod-track instant tying the decision
                    // that moved this pod back to the deciding round.
                    if self.tracer.enabled() {
                        if let Some(pod) = audit_pod {
                            self.tracer.record_instant(
                                Track::Pod(pod),
                                "sched.round",
                                now_us,
                                round_span,
                                vec![
                                    ("kind", FieldValue::Str(kind.to_string())),
                                    (
                                        "scheduler",
                                        FieldValue::Str(self.scheduler.name().to_string()),
                                    ),
                                ],
                            );
                        }
                    }
                    match mb_delta {
                        Some(("requested", mb)) => {
                            self.obs.metrics.add("knots_requested_mb_total", &[], mb as u64);
                        }
                        Some(("harvested", mb)) if mb > 0.0 => {
                            self.obs.metrics.add("knots_harvested_mb_total", &[], mb as u64);
                        }
                        _ => {}
                    }
                }
                Err(e) => {
                    self.skipped += 1;
                    let err = error_label(&e);
                    self.obs
                        .metrics
                        .inc("knots_actions_skipped_total", &[("kind", kind), ("error", err)]);
                    self.obs.recorder.record(
                        Event::new("orchestrator", "action.skipped")
                            .at(now_us)
                            .severity(Severity::Warn)
                            .str("kind", kind)
                            .str("error", err),
                    );
                }
            }
        }
    }

    /// Record per-node utilization at the metric interval. Due times snap to
    /// the interval grid (anchored at t=0) rather than trailing the previous
    /// fire time, so a tick that doesn't divide the interval cannot make the
    /// effective cadence drift to `ceil(interval / tick) * tick`.
    fn collect_metrics(&mut self) {
        let now = self.cluster.now();
        if self.next_metric.is_some_and(|t| now < t) {
            return;
        }
        let iv_us = self.cfg.metric_interval.as_micros().max(1);
        self.next_metric = Some(SimTime::from_micros((now.as_micros() / iv_us + 1) * iv_us));
        for (i, node) in self.cluster.nodes().iter().enumerate() {
            let util = node.last_sample().sm_util * 100.0;
            self.util_series[i].push(util);
            if node.resident_count() > 0 {
                self.active_util.push(util);
            }
        }
        // Telemetry freshness: per-node sample age plus a stale-series
        // count against the configured bound, so stale-fallback behaviour
        // is observable without grepping the audit log. Only maintained
        // when a freshness bound is configured — without one no fallback
        // can trigger, and the per-node gauge labels cost an allocation
        // per node per grid point.
        let Some(freshness) = self.cfg.freshness else { return };
        let now_us = now.as_micros();
        let mut stale = 0u64;
        for node in self.cluster.nodes() {
            let age_us = match self.tsdb.node_last_at(node.id()) {
                Some(t) => now_us.saturating_sub(t.as_micros()),
                None => now_us,
            };
            let label = node.id().0.to_string();
            self.obs.metrics.set_gauge(
                "knots_telemetry_node_age_us",
                &[("node", &label)],
                age_us as f64,
            );
            if age_us > freshness.as_micros() {
                stale += 1;
            }
        }
        self.obs.metrics.set_gauge("knots_telemetry_stale_series", &[], stale as f64);
    }

    /// Drop TSDB series of pods that finished since the last call.
    fn garbage_collect(&mut self) {
        let events = self.cluster.events();
        for e in &events[self.events_seen..] {
            match (e.pod, e.kind) {
                (Some(pod), EventKind::Completed { .. }) => self.tsdb.forget_pod(pod),
                (_, EventKind::Crashed { .. }) => {
                    // Crashed pods are requeued, so their series must stay:
                    // CBP's OOM-avoidance needs the history that preceded the
                    // crash. Only count it.
                    self.obs.metrics.inc("knots_crashes_total", &[]);
                }
                _ => {}
            }
        }
        self.events_seen = events.len();
    }

    /// Build the final report.
    fn report(&self, submitted: usize) -> RunReport {
        let mut batch = Vec::new();
        let mut lc = Vec::new();
        let mut all = Vec::new();
        let mut lc_completed = 0usize;
        let mut lc_violations = 0usize;
        for (_, pod) in self.cluster.completed_pods() {
            let Some(turnaround) = pod.turnaround() else { continue };
            let t = turnaround.as_secs_f64();
            all.push(t);
            match pod.spec().qos {
                QosClass::LatencyCritical { .. } => {
                    lc.push(t);
                    lc_completed += 1;
                    if pod.met_deadline() == Some(false) {
                        lc_violations += 1;
                    }
                }
                QosClass::Batch => batch.push(t),
            }
        }
        // Unfinished latency-critical queries already past their deadline
        // also count as violations (a scheduler cannot hide violations by
        // starving the queue).
        let now = self.cluster.now();
        for id in self.cluster.pending_queue().collect::<Vec<_>>() {
            if let Some(pod) = self.cluster.pod(id) {
                if let QosClass::LatencyCritical { deadline } = pod.spec().qos {
                    if now.saturating_since(pod.arrival()) > deadline {
                        lc_violations += 1;
                    }
                }
            }
        }

        let mut crashes = 0;
        let mut preemptions = 0;
        let mut migrations = 0;
        let mut gave_up = 0;
        for e in self.cluster.events() {
            match e.kind {
                EventKind::Crashed { .. } => crashes += 1,
                EventKind::Preempted { .. } => preemptions += 1,
                EventKind::Migrated { .. } => migrations += 1,
                EventKind::GaveUp { .. } => gave_up += 1,
                _ => {}
            }
        }
        // Event-core throughput (digest-excluded, like phase timings): how
        // many calendar events the run processed, per kind and per
        // simulated second. Zero under the oracle and calendar legs, which
        // don't pop events.
        let mut events_processed = 0u64;
        for kind in CoreEvent::ALL {
            let n = self.event_counts[kind.priority() as usize];
            if n > 0 {
                self.obs.metrics.add("knots_core_events_total", &[("kind", kind.label())], n);
                events_processed += n;
            }
        }
        if self.hb_latency.count() > 0 {
            self.obs.metrics.merge_histogram("knots_heartbeat_latency_us", &[], &self.hb_latency);
        }
        let duration = now.saturating_since(SimTime::ZERO);
        let events_per_sim_second = if duration.as_micros() > 0 {
            events_processed as f64 / duration.as_secs_f64()
        } else {
            0.0
        };

        let fc = self.chaos.as_ref().map(|e| e.counts()).unwrap_or_default();
        let faults = FaultStats {
            node_failures: fc.node_failures,
            degradations: fc.degradations,
            probe_dropouts: fc.probe_dropouts,
            corruption_windows: fc.corruption_windows,
            corrupted_samples: fc.corrupted_samples,
            heartbeat_delays: fc.heartbeat_delays,
            controller_crashes: fc.controller_crashes,
            rejected_samples: self.tsdb.rejected_total(),
            gave_up,
        };

        RunReport {
            scheduler: self.scheduler.name().to_string(),
            duration,
            node_util_series: self.util_series.clone(),
            active_util_samples: self.active_util.clone(),
            submitted,
            completed: self.cluster.completed_len(),
            lc_completed,
            lc_violations,
            batch_jct: JctStats::from_secs(batch),
            lc_latency: JctStats::from_secs(lc),
            all_jct: JctStats::from_secs(all),
            energy_joules: self.cluster.total_energy_joules(),
            crashes,
            preemptions,
            migrations,
            skipped_actions: self.skipped,
            skipped_breakdown: self
                .obs
                .metrics
                .counters_named("knots_actions_skipped_total")
                .into_iter()
                .map(|(labels, count)| {
                    // Labels come back sorted alphabetically: error, kind.
                    let get = |key: &str| {
                        labels
                            .iter()
                            .find(|(k, _)| k == key)
                            .map(|(_, v)| v.clone())
                            .unwrap_or_default()
                    };
                    SkippedAction { kind: get("kind"), error: get("error"), count }
                })
                .collect(),
            phase_timings: self.timers.stats().iter().map(PhaseTiming::from_stat).collect(),
            faults,
            events_processed,
            events_per_sim_second,
            recovery: RecoveryStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knots_sched::pp::CbpPp;
    use knots_sched::resag::ResAg;
    use knots_sched::uniform::Uniform;
    use knots_sim::pod::PodSpec;
    use knots_sim::profile::ResourceProfile;
    use knots_sim::resources::GpuModel;
    use knots_sim::time::SimDuration;

    fn tiny_schedule() -> Vec<ScheduledPod> {
        (0..6)
            .map(|i| ScheduledPod {
                at: SimTime::from_millis(i * 200),
                spec: PodSpec::batch(
                    format!("job-{i}"),
                    ResourceProfile::constant(0.4, 1500.0, 1.0),
                )
                .with_request_mb(3000.0),
            })
            .collect()
    }

    fn quiet(nodes: usize) -> ClusterConfig {
        let mut c = ClusterConfig::homogeneous(nodes, GpuModel::P100);
        c.overheads.cold_start_pull = SimDuration::from_millis(200);
        c
    }

    #[test]
    fn uniform_runs_everything_to_completion() {
        let mut k =
            KubeKnots::new(quiet(3), Box::new(Uniform::new()), OrchestratorConfig::default());
        let report = k.run_schedule(&tiny_schedule());
        assert_eq!(report.submitted, 6);
        assert_eq!(report.completed, 6);
        assert_eq!(report.crashes, 0);
        assert!(report.batch_jct.count == 6);
        assert!(report.energy_joules > 0.0);
        assert_eq!(report.scheduler, "Uniform");
    }

    #[test]
    fn resag_packs_more_than_uniform() {
        // Same workload, fewer nodes than jobs: Res-Ag shares, Uniform
        // serializes, so Res-Ag finishes sooner.
        let run = |s: Box<dyn Scheduler>| {
            let mut k = KubeKnots::new(quiet(1), s, OrchestratorConfig::default());
            k.run_schedule(&tiny_schedule())
        };
        let uni = run(Box::new(Uniform::new()));
        let ra = run(Box::new(ResAg::new()));
        assert_eq!(uni.completed, 6);
        assert_eq!(ra.completed, 6);
        assert!(
            ra.all_jct.avg < uni.all_jct.avg,
            "sharing should beat serializing: {} vs {}",
            ra.all_jct.avg,
            uni.all_jct.avg
        );
    }

    #[test]
    fn pp_consolidates_and_sleeps_nodes() {
        let mut cfg = quiet(4);
        cfg.auto_sleep_after = Some(SimDuration::from_secs(5));
        let mut k = KubeKnots::new(cfg, Box::new(CbpPp::new()), OrchestratorConfig::default());
        let report = k.run_schedule(&tiny_schedule());
        assert_eq!(report.completed, 6);
        // Consolidation: at least one node never hosted anything.
        let idle_nodes =
            report.node_util_series.iter().filter(|s| s.iter().all(|&u| u == 0.0)).count();
        assert!(idle_nodes >= 1, "PP should leave nodes idle");
    }

    #[test]
    fn report_counts_unfinished_lc_as_violations() {
        // A latency-critical pod that can never be placed (request larger
        // than the device) must still surface as a violation.
        let schedule = vec![ScheduledPod {
            at: SimTime::ZERO,
            spec: PodSpec::latency_critical("q", ResourceProfile::constant(0.5, 100.0, 0.05))
                .with_request_mb(20_000.0),
        }];
        let orch_cfg =
            OrchestratorConfig { drain_grace: SimDuration::from_secs(2), ..Default::default() };
        let mut k = KubeKnots::new(quiet(1), Box::new(ResAg::new()), orch_cfg);
        let report = k.run_schedule(&schedule);
        assert_eq!(report.completed, 0);
        assert_eq!(report.lc_violations, 1);
    }

    #[test]
    fn telemetry_is_populated_during_runs() {
        let mut k = KubeKnots::new(quiet(2), Box::new(ResAg::new()), OrchestratorConfig::default());
        let _ = k.run_schedule(&tiny_schedule());
        assert!(k.tsdb().node_len(knots_sim::ids::NodeId(0)) > 0);
    }

    #[test]
    fn metric_cadence_does_not_drift_under_non_divisible_tick() {
        // 100 ms metric interval sampled by a 30 ms tick: the "since last
        // sample" rule stretches every gap to 120 ms, collecting ~25 samples
        // where ~30 belong. The grid-snapped rule keeps the average cadence
        // at the configured interval.
        let cfg = OrchestratorConfig {
            tick: SimDuration::from_millis(30),
            heartbeat: SimDuration::from_millis(30),
            drain_grace: SimDuration::from_secs(3),
            ..Default::default()
        };
        let schedule = vec![ScheduledPod {
            at: SimTime::ZERO,
            spec: PodSpec::batch("long", ResourceProfile::constant(0.4, 1500.0, 5.0)),
        }];
        let mut k = KubeKnots::new(quiet(1), Box::new(ResAg::new()), cfg);
        let report = k.run_schedule(&schedule);
        let samples = report.node_util_series[0].len() as f64;
        // +1 for the fencepost: both endpoints of the run are sampled. The
        // drifting rule would lose ~5 samples here (cadence 120 ms, not 100).
        let expected = report.duration.as_secs_f64() / 0.1 + 1.0;
        assert!(
            (samples - expected).abs() <= 2.0,
            "metric cadence drifted: {samples} samples over {:.2} s (expected ~{expected:.0})",
            report.duration.as_secs_f64()
        );
    }

    #[test]
    fn gc_keeps_crashed_pod_series_and_drops_completed_ones() {
        // One well-behaved pod plus two that each use 18x their request:
        // Res-Ag co-locates all three on the single node by request, the
        // aggregate usage blows past the 16 GB device and victims OOM-crash
        // and requeue. Their telemetry must survive GC — CBP's OOM-avoidance
        // needs the pre-crash history — while the completed pod's series is
        // forgotten to bound TSDB growth.
        let mut schedule = vec![ScheduledPod {
            at: SimTime::ZERO,
            spec: PodSpec::batch("good", ResourceProfile::constant(0.3, 1000.0, 0.5)),
        }];
        for i in 0..2 {
            // Quiet for a second (so the probe records some history), then
            // the demand jumps past half the device.
            let profile = knots_sim::profile::ProfileBuilder::new()
                .compute(1.0, 0.3, 800.0)
                .compute(60.0, 0.3, 9000.0)
                .build();
            schedule.push(ScheduledPod {
                at: SimTime::ZERO,
                spec: PodSpec::batch(format!("oom-{i}"), profile).with_request_mb(500.0),
            });
        }
        let cfg =
            OrchestratorConfig { drain_grace: SimDuration::from_secs(3), ..Default::default() };
        let mut k = KubeKnots::new(quiet(1), Box::new(ResAg::new()), cfg);
        let report = k.run_schedule(&schedule);
        assert!(report.crashes > 0, "oversubscribed co-location should crash");
        assert_eq!(report.completed, 1, "only the well-behaved pod finishes");
        let (completed_id, _) = k.cluster().completed_pods().next().expect("one completion");
        assert_eq!(k.tsdb().pod_len(completed_id), 0, "completed series must be GC'd");
        let crashed_id = k
            .cluster()
            .events()
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Crashed { .. } => e.pod,
                _ => None,
            })
            .expect("a crash event");
        assert!(
            k.tsdb().pod_len(crashed_id) > 0,
            "crashed-and-requeued pod series must be retained"
        );
        // The crash counter flows through the metrics registry too.
        assert_eq!(
            k.obs().metrics.counter_value("knots_crashes_total", &[]),
            report.crashes as u64
        );
    }

    #[test]
    fn chaos_node_failure_crashes_requeues_and_recovers() {
        use knots_chaos::{FaultEvent, FaultKind, FaultPlan};
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_millis(500),
            kind: FaultKind::NodeFail {
                node: knots_sim::ids::NodeId(0),
                recover_after: Some(SimDuration::from_secs(2)),
            },
        }]);
        let mut k = KubeKnots::new(quiet(2), Box::new(ResAg::new()), OrchestratorConfig::default())
            .with_chaos(ChaosEngine::new(plan));
        let report = k.run_schedule(&tiny_schedule());
        assert_eq!(report.faults.node_failures, 1);
        assert!(report.crashes > 0, "residents of the failed node must crash");
        assert_eq!(report.completed, 6, "victims requeue and finish elsewhere or after recovery");
        let reasons: Vec<_> = k
            .cluster()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Crashed { reason, .. } => Some(reason),
                _ => None,
            })
            .collect();
        assert!(reasons.contains(&knots_sim::events::CrashReason::NodeFailure), "{reasons:?}");
        assert!(
            k.obs().metrics.counter_value("knots_chaos_actions_total", &[("kind", "fail_node")])
                == 1
        );
    }

    #[test]
    fn inert_chaos_engine_is_dropped() {
        let k = KubeKnots::new(quiet(1), Box::new(ResAg::new()), OrchestratorConfig::default())
            .with_chaos(ChaosEngine::new(knots_chaos::FaultPlan::empty()));
        assert!(k.fault_counts().is_none(), "empty plan must leave no chaos state behind");
    }

    #[test]
    fn obs_bundle_records_metrics_trace_and_phase_timings() {
        let obs = knots_obs::Obs::with_trace_capacity(4096);
        let mut k = KubeKnots::new(quiet(2), Box::new(CbpPp::new()), OrchestratorConfig::default())
            .with_obs(obs);
        let report = k.run_schedule(&tiny_schedule());
        assert_eq!(report.completed, 6);
        let placed =
            k.obs().metrics.counter_value("knots_actions_applied_total", &[("kind", "Place")]);
        assert!(placed >= 6, "every pod placement should be counted, got {placed}");
        let hist = k.obs().metrics.histogram("knots_heartbeat_latency_us", &[]).expect("histogram");
        assert!(hist.count() > 0, "heartbeat latency must be observed every round");
        assert!(!report.phase_timings.is_empty(), "phase timings must reach the report");
        for phase in ["snapshot", "decide", "apply", "step", "probe"] {
            assert!(
                report.phase_timings.iter().any(|p| p.phase == phase && p.count > 0),
                "missing phase timing for {phase}"
            );
        }
        // The scheduler audit trail flows through the shared recorder.
        let trace = k.obs().recorder.export_jsonl();
        assert!(trace.contains("\"sched."), "scheduler decisions should be audited: {trace}");
        // Skipped breakdown is consistent with the aggregate counter.
        let sum: u64 = report.skipped_breakdown.iter().map(|s| s.count).sum();
        assert_eq!(sum as usize, report.skipped_actions);
    }

    #[test]
    fn tracer_captures_lifecycle_and_system_spans() {
        let tracer = Tracer::bounded(1 << 16);
        let mut k = KubeKnots::new(quiet(2), Box::new(CbpPp::new()), OrchestratorConfig::default())
            .with_tracer(tracer);
        let report = k.run_schedule(&tiny_schedule());
        assert_eq!(report.completed, 6);
        let spans = k.tracer().spans();
        let has = |name: &str| spans.iter().any(|s| s.name == name);
        for name in ["queued", "placed", "running", "completed", "agg.heartbeat", "sched.round"] {
            assert!(has(name), "missing span {name}");
        }
        // Every pod's chain terminates: 6 completions on pod tracks.
        let completed = spans.iter().filter(|s| s.name == "completed").count();
        assert_eq!(completed, 6);
        // Audit links tie pod placements back to a scheduling round.
        let audit = spans
            .iter()
            .find(|s| s.name == "sched.round" && matches!(s.track, Track::Pod(_)))
            .expect("pod-track audit instant");
        let parent = audit.parent.expect("audit links to the deciding round");
        assert!(spans
            .iter()
            .any(|s| s.id == parent && s.name == "sched.round" && s.track == Track::Control));
        // Stage histograms fold every complete span.
        let stages = k.tracer().stage_histograms();
        assert!(stages.iter().any(|(name, h)| *name == "queued" && h.count() >= 6));
    }

    #[test]
    fn disabled_tracer_keeps_the_run_untraced() {
        let mut k = KubeKnots::new(quiet(2), Box::new(CbpPp::new()), OrchestratorConfig::default());
        let report = k.run_schedule(&tiny_schedule());
        assert_eq!(report.completed, 6);
        assert!(k.tracer().is_empty());
        assert!(k.tracer().stage_histograms().is_empty());
    }

    #[test]
    fn freshness_gauges_track_node_sample_age() {
        let obs = knots_obs::Obs::disabled();
        let cfg =
            OrchestratorConfig { freshness: Some(SimDuration::from_secs(5)), ..Default::default() };
        let mut k = KubeKnots::new(quiet(2), Box::new(CbpPp::new()), cfg).with_obs(obs);
        k.run_schedule(&tiny_schedule());
        // Per-node age gauges exist for every node; probes run every tick,
        // so nothing is stale.
        for node in ["0", "1"] {
            assert!(
                k.obs()
                    .metrics
                    .gauge_value("knots_telemetry_node_age_us", &[("node", node)])
                    .is_some(),
                "missing age gauge for node {node}"
            );
        }
        assert_eq!(k.obs().metrics.gauge_value("knots_telemetry_stale_series", &[]), Some(0.0));
    }
}
