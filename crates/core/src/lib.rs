//! # knots-core — the Kube-Knots orchestrator
//!
//! Ties the whole reproduction together (Fig. 5 of the paper):
//!
//! * the [`orchestrator::KubeKnots`] control loop advances the simulated
//!   cluster tick by tick, feeds arrivals from a workload schedule, samples
//!   telemetry into the TSDB each heartbeat, asks the pluggable scheduler
//!   for decisions, and applies them;
//! * [`metrics`] turns the run into the quantities the paper reports:
//!   per-node and cluster-wide utilization percentiles (Figs. 6, 8, 9), COV
//!   (Figs. 7, 11b), QoS violations (Figs. 10a, 12b), JCT statistics
//!   (Fig. 12a, Table IV) and energy (Fig. 11a);
//! * [`experiment`] packages the standard runs: the ten-node app-mix
//!   experiments and the 256-GPU DNN-scheduler comparison.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod config;
pub mod experiment;
pub mod metrics;
pub mod orchestrator;

pub use calendar::{AppliedEvent, CoreEvent, EventCalendar};
pub use config::{LoopMode, OrchestratorConfig};
pub use metrics::{FaultStats, JctStats, RecoveryStats, RunReport};
pub use orchestrator::{KubeKnots, OrchestratorState};

/// Convenient re-exports for downstream binaries and examples.
pub mod prelude {
    pub use crate::config::OrchestratorConfig;
    pub use crate::experiment::{run_mix, run_schedule, ExperimentConfig};
    pub use crate::metrics::{JctStats, RunReport};
    pub use crate::orchestrator::KubeKnots;
    pub use knots_sched::cbp::Cbp;
    pub use knots_sched::gandiva::Gandiva;
    pub use knots_sched::pp::CbpPp;
    pub use knots_sched::resag::ResAg;
    pub use knots_sched::tiresias::Tiresias;
    pub use knots_sched::uniform::Uniform;
    pub use knots_sched::Scheduler;
    pub use knots_sim::prelude::*;
    pub use knots_workloads::{AppMix, LoadGenerator};
}
