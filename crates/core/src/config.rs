//! Orchestrator configuration.

use knots_sim::time::SimDuration;

/// Which control-loop implementation drives a run. All three are
/// bit-identical at matching grid points by construction; the pinned
/// digests and the determinism suite prove it on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopMode {
    /// Advance one tick at a time — the A/B oracle the other modes are
    /// checked against.
    Naive,
    /// The span calendar: every layer is polled for `next_due()` hints and
    /// dead ticks are jumped in tick-quantized spans. Kept as the middle
    /// leg of the perf A/B.
    Calendar,
    /// The continuous-time event queue (the default): layers schedule
    /// typed events on a binary-heap calendar and the loop jumps straight
    /// to the next event, no per-step rescans.
    EventQueue,
}

/// Timing knobs of the Kube-Knots control loop.
#[derive(Debug, Clone, Copy)]
pub struct OrchestratorConfig {
    /// Simulation tick. Everything (execution, telemetry, scheduling) is
    /// quantized to this. 10 ms resolves the shortest inference queries
    /// against the 150 ms QoS deadline.
    pub tick: SimDuration,
    /// Scheduler heartbeat: how often the aggregator snapshots the cluster
    /// and the scheduler runs. Clamped up to `tick` at runtime. (The
    /// paper's 1 ms operating point is exercised by the Fig. 10b accuracy
    /// harness, which uses sub-tick traces; full-cluster runs use
    /// tick-rate heartbeats.)
    pub heartbeat: SimDuration,
    /// The sliding telemetry window `d` handed to the scheduler (§IV-C,
    /// default 5 s).
    pub window: SimDuration,
    /// Interval at which node utilization is recorded for the experiment
    /// metrics (coarser than the tick to bound memory).
    pub metric_interval: SimDuration,
    /// Keep running this long after the last arrival to let queued work
    /// drain before the report is cut.
    pub drain_grace: SimDuration,
    /// Maximum telemetry age before schedulers treat a series as stale and
    /// fall back to their Res-Ag-like baseline (CBP skips the correlation
    /// veto, PP withholds the forecast override). `None` — the default,
    /// which the pinned digests assume — trusts every series, correct for
    /// a fault-free cluster where probes never miss a tick.
    pub freshness: Option<SimDuration>,
    /// Force the control loop to advance one tick at a time instead of
    /// jumping to the next event. Overrides [`OrchestratorConfig::mode`]:
    /// when set, the run uses [`LoopMode::Naive`] regardless. The event
    /// core is bit-identical to naive ticking by construction; this switch
    /// exists so tests (and the bench harness) can prove it on every run.
    pub naive_ticking: bool,
    /// Control-loop implementation (ignored when `naive_ticking` is set).
    /// Defaults to the event queue.
    pub mode: LoopMode,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            tick: SimDuration::from_millis(10),
            heartbeat: SimDuration::from_millis(10),
            window: SimDuration::from_secs(5),
            metric_interval: SimDuration::from_millis(100),
            drain_grace: SimDuration::from_secs(180),
            freshness: None,
            naive_ticking: false,
            mode: LoopMode::EventQueue,
        }
    }
}

impl OrchestratorConfig {
    /// The control-loop implementation this config selects:
    /// `naive_ticking` wins over `mode`.
    pub fn effective_mode(&self) -> LoopMode {
        if self.naive_ticking {
            LoopMode::Naive
        } else {
            self.mode
        }
    }

    /// A coarser loop for the long 256-GPU DNN simulation.
    pub fn dnn_sim() -> Self {
        OrchestratorConfig {
            // 20 ms resolves the 60-130 ms inference services against their
            // 150 ms deadline while keeping the 256-GPU trace tractable.
            tick: SimDuration::from_millis(20),
            heartbeat: SimDuration::from_millis(20),
            window: SimDuration::from_secs(5),
            metric_interval: SimDuration::from_secs(1),
            drain_grace: SimDuration::from_secs(600),
            freshness: None,
            naive_ticking: false,
            mode: LoopMode::EventQueue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = OrchestratorConfig::default();
        assert!(c.heartbeat >= c.tick);
        assert!(c.window > c.heartbeat);
        assert!(c.metric_interval >= c.tick);
        let d = OrchestratorConfig::dnn_sim();
        assert!(d.metric_interval > c.metric_interval);
    }

    #[test]
    fn naive_ticking_overrides_the_loop_mode() {
        let mut c = OrchestratorConfig::default();
        assert_eq!(c.effective_mode(), LoopMode::EventQueue);
        c.mode = LoopMode::Calendar;
        assert_eq!(c.effective_mode(), LoopMode::Calendar);
        c.naive_ticking = true;
        assert_eq!(c.effective_mode(), LoopMode::Naive);
    }
}
