//! Packaged experiment runners used by the `experiments` binary, the
//! examples and the benches.

use crate::config::OrchestratorConfig;
use crate::metrics::RunReport;
use crate::orchestrator::KubeKnots;
use knots_chaos::{ChaosEngine, FaultPlan};
use knots_sched::cbp::Cbp;
use knots_sched::gandiva::Gandiva;
use knots_sched::pp::CbpPp;
use knots_sched::resag::ResAg;
use knots_sched::tiresias::Tiresias;
use knots_sched::uniform::Uniform;
use knots_sched::Scheduler;
use knots_sim::cluster::ClusterConfig;
use knots_sim::time::SimDuration;
use knots_workloads::dnn::{self, DnnWorkloadConfig};
use knots_workloads::loadgen::{LoadGenConfig, LoadGenerator, ScheduledPod};
use knots_workloads::AppMix;

/// Configuration for a ten-node app-mix experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Worker-node count (paper: 10).
    pub nodes: usize,
    /// Workload window length.
    pub duration: SimDuration,
    /// Seed for the load generator.
    pub seed: u64,
    /// Orchestrator timing.
    pub orch: OrchestratorConfig,
    /// Arrival-rate multiplier.
    pub rate_scale: f64,
    /// Batch runtime multiplier.
    pub batch_scale: f64,
    /// Cluster shard count (`None` → single shard). Digests are
    /// bit-identical across shard counts; shards only change how the core
    /// parallelizes stepping, telemetry and candidate sorting.
    pub shards: Option<usize>,
    /// Worker threads for parallel shard stepping (`None` → serial).
    /// Like `shards`, this never moves a digest — by-index joins keep the
    /// merged results in shard order regardless of lane count.
    pub workers: Option<usize>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            nodes: knots_sim::config::TESTBED_WORKER_NODES,
            duration: SimDuration::from_secs(600),
            seed: 42,
            orch: OrchestratorConfig::default(),
            rate_scale: 1.0,
            batch_scale: 1.0,
            shards: None,
            workers: None,
        }
    }
}

/// Instantiate a scheduler by its paper label.
///
/// Known labels: `"Uniform"`, `"Res-Ag"`, `"CBP"`, `"CBP+PP"`, `"Gandiva"`,
/// `"Tiresias"`.
pub fn scheduler_by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    match name {
        "Uniform" => Some(Box::new(Uniform::new())),
        "Res-Ag" => Some(Box::new(ResAg::new())),
        "CBP" => Some(Box::new(Cbp::new())),
        "CBP+PP" => Some(Box::new(CbpPp::new())),
        "Gandiva" => Some(Box::new(Gandiva::new())),
        "Tiresias" => Some(Box::new(Tiresias::new())),
        _ => None,
    }
}

/// The four cluster-experiment schedulers, in the paper's comparison order.
pub const CLUSTER_SCHEDULERS: [&str; 4] = ["Uniform", "Res-Ag", "CBP", "CBP+PP"];

/// The four DNN-experiment schedulers (Fig. 12 / Table IV).
pub const DNN_SCHEDULERS: [&str; 4] = ["Res-Ag", "Gandiva", "Tiresias", "CBP+PP"];

/// Run one scheduler over one app-mix on the paper's testbed topology.
pub fn run_mix(scheduler: Box<dyn Scheduler>, mix: AppMix, cfg: &ExperimentConfig) -> RunReport {
    run_mix_with_obs(scheduler, mix, cfg, knots_obs::Obs::disabled())
}

/// [`run_mix`] with an observability bundle attached: scheduler decisions
/// land in `obs.recorder`, control-loop counters in `obs.metrics`. The
/// bundle is `Clone`-cheap (`Arc` interiors), so one bundle can aggregate
/// across several concurrent runs.
pub fn run_mix_with_obs(
    scheduler: Box<dyn Scheduler>,
    mix: AppMix,
    cfg: &ExperimentConfig,
    obs: knots_obs::Obs,
) -> RunReport {
    run_mix_with_chaos(scheduler, mix, cfg, obs, FaultPlan::empty())
}

/// [`run_mix_with_obs`] with a fault plan replayed against the run. An
/// empty plan is exactly `run_mix_with_obs`: the inert engine is dropped
/// before the loop starts, so the reports are bit-identical.
pub fn run_mix_with_chaos(
    scheduler: Box<dyn Scheduler>,
    mix: AppMix,
    cfg: &ExperimentConfig,
    obs: knots_obs::Obs,
    plan: FaultPlan,
) -> RunReport {
    let mut gen_cfg = LoadGenConfig::new(cfg.duration, cfg.seed);
    gen_cfg.rate_scale = cfg.rate_scale;
    gen_cfg.batch_scale = cfg.batch_scale;
    let schedule = LoadGenerator::generate(mix, &gen_cfg);
    let mut cluster_cfg = ClusterConfig::homogeneous(cfg.nodes, knots_sim::config::TESTBED_GPU);
    cluster_cfg.shards = cfg.shards;
    cluster_cfg.workers = cfg.workers;
    // Long-lived inference services keep their images pre-pulled in
    // production; batch jobs still pay real cold starts.
    cluster_cfg.prewarm_images = mix.lc_services().iter().map(|s| s.image()).collect();
    run_schedule_with_chaos(scheduler, &schedule, cluster_cfg, cfg.orch, obs, plan)
}

/// Run one scheduler over an explicit schedule and cluster topology.
pub fn run_schedule(
    scheduler: Box<dyn Scheduler>,
    schedule: &[ScheduledPod],
    cluster_cfg: ClusterConfig,
    orch: OrchestratorConfig,
) -> RunReport {
    run_schedule_with_obs(scheduler, schedule, cluster_cfg, orch, knots_obs::Obs::disabled())
}

/// [`run_schedule`] with an observability bundle attached.
pub fn run_schedule_with_obs(
    scheduler: Box<dyn Scheduler>,
    schedule: &[ScheduledPod],
    cluster_cfg: ClusterConfig,
    orch: OrchestratorConfig,
    obs: knots_obs::Obs,
) -> RunReport {
    run_schedule_with_chaos(scheduler, schedule, cluster_cfg, orch, obs, FaultPlan::empty())
}

/// [`run_schedule_with_obs`] with a fault plan replayed against the run.
pub fn run_schedule_with_chaos(
    scheduler: Box<dyn Scheduler>,
    schedule: &[ScheduledPod],
    cluster_cfg: ClusterConfig,
    orch: OrchestratorConfig,
    obs: knots_obs::Obs,
    plan: FaultPlan,
) -> RunReport {
    run_schedule_traced(
        scheduler,
        schedule,
        cluster_cfg,
        orch,
        obs,
        plan,
        knots_trace::Tracer::disabled(),
    )
}

/// The bottom of the runner chain: observability bundle, fault plan *and*
/// causal tracer. A disabled tracer takes exactly the untraced code path,
/// so every shallower entry point stays bit-identical to before tracing
/// existed.
#[allow(clippy::too_many_arguments)]
pub fn run_schedule_traced(
    scheduler: Box<dyn Scheduler>,
    schedule: &[ScheduledPod],
    cluster_cfg: ClusterConfig,
    orch: OrchestratorConfig,
    obs: knots_obs::Obs,
    plan: FaultPlan,
    tracer: knots_trace::Tracer,
) -> RunReport {
    let mut k = KubeKnots::new(cluster_cfg, scheduler, orch)
        .with_obs(obs)
        .with_chaos(ChaosEngine::new(plan))
        .with_tracer(tracer);
    k.run_schedule(schedule)
}

/// Run one scheduler over the §V-C DNN workload on the 256-GPU topology.
pub fn run_dnn(scheduler: Box<dyn Scheduler>, workload: &DnnWorkloadConfig) -> RunReport {
    run_dnn_traced(
        scheduler,
        workload,
        knots_obs::Obs::disabled(),
        FaultPlan::empty(),
        knots_trace::Tracer::disabled(),
    )
}

/// [`run_dnn`] with a fault plan and a causal tracer attached — the
/// backing runner for `experiments trace`.
pub fn run_dnn_traced(
    scheduler: Box<dyn Scheduler>,
    workload: &DnnWorkloadConfig,
    obs: knots_obs::Obs,
    plan: FaultPlan,
    tracer: knots_trace::Tracer,
) -> RunReport {
    let tasks = dnn::generate(workload);
    let schedule: Vec<ScheduledPod> =
        tasks.into_iter().map(|t| ScheduledPod { at: t.at, spec: t.spec }).collect();
    let mut cluster_cfg = ClusterConfig::dnn_sim();
    // Serving images are pre-pulled fleet-wide; training images cold-start.
    cluster_cfg.prewarm_images =
        knots_workloads::djinn::InferenceService::ALL.iter().map(|s| s.image()).collect();
    let mut orch = OrchestratorConfig::dnn_sim();
    // Overloaded traces leave a queue at the end of the window; give the
    // backlog room to drain so JCT statistics cover the whole population.
    orch.drain_grace = SimDuration::from_secs((workload.duration.as_secs_f64() * 1.5) as u64);
    run_schedule_traced(scheduler, &schedule, cluster_cfg, orch, obs, plan, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_lookup() {
        for name in CLUSTER_SCHEDULERS.iter().chain(DNN_SCHEDULERS.iter()) {
            assert!(scheduler_by_name(name).is_some(), "{name}");
            assert_eq!(scheduler_by_name(name).unwrap().name(), *name);
        }
        assert!(scheduler_by_name("nonsense").is_none());
    }

    #[test]
    fn short_mix_run_smoke() {
        let cfg = ExperimentConfig { duration: SimDuration::from_secs(30), ..Default::default() };
        let report = run_mix(scheduler_by_name("CBP+PP").unwrap(), AppMix::Mix3, &cfg);
        assert!(report.submitted > 0);
        assert!(report.completed > 0, "some pods must finish");
        assert_eq!(report.node_util_series.len(), 10);
    }
}
