//! The continuous-time event calendar at the heart of the orchestrator.
//!
//! A deterministic binary-heap calendar of typed control events — aggregator
//! heartbeats, metric-grid points, workload arrivals, chaos actions, the
//! drain deadline — ordered by the total key `(SimTime, priority, seq)`.
//! The key mirrors the `BTreeMap<(SimTime, seq)>` relaunch-queue convention
//! in `knots-sim`: simultaneous events pop in a fixed class order (the order
//! the naive tick loop processes them within one tick), and events of the
//! same class at the same instant pop in insertion order. Pop order is
//! therefore a pure function of the push sequence — never of heap layout,
//! hash state, or allocation addresses.
//!
//! Event times are *processing* instants: producers snap a continuous due
//! time to the first tick-grid point at or after it (see
//! [`grid_at_or_after`]) before scheduling, because the oracle loop
//! (`OrchestratorConfig::naive_ticking`) only observes the world at grid
//! points. Handlers then advance the simulation in closed form between
//! events; nothing in the hot path rescans layers for their next due
//! instant.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use knots_sim::time::SimTime;

/// A typed control event. The variant fixes the event's priority class:
/// within one instant, classes pop in the order the naive tick loop
/// processes them — end-of-previous-tick work (metric grid) first, then
/// start-of-tick work (arrivals, chaos, heartbeat), then the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum CoreEvent {
    /// Experiment metric-grid point (`collect_metrics`): end-of-tick work,
    /// so it sorts before the start-of-tick classes at the same instant.
    MetricGrid,
    /// One or more workload arrivals have come due.
    Arrival,
    /// The chaos engine has actions due (injections or recoveries).
    Chaos,
    /// Aggregator heartbeat: snapshot, decide, apply.
    Heartbeat,
    /// The drain deadline: the run stops here regardless of queue state.
    DrainDeadline,
}

impl CoreEvent {
    /// Priority class within one instant (lower pops first).
    pub fn priority(self) -> u8 {
        match self {
            CoreEvent::MetricGrid => 0,
            CoreEvent::Arrival => 1,
            CoreEvent::Chaos => 2,
            CoreEvent::Heartbeat => 3,
            CoreEvent::DrainDeadline => 4,
        }
    }

    /// Stable label for metrics (`knots_core_events_total{kind=...}`).
    pub fn label(self) -> &'static str {
        match self {
            CoreEvent::MetricGrid => "metric_grid",
            CoreEvent::Arrival => "arrival",
            CoreEvent::Chaos => "chaos",
            CoreEvent::Heartbeat => "heartbeat",
            CoreEvent::DrainDeadline => "drain_deadline",
        }
    }

    /// Every event kind, in priority order (metrics export iterates this).
    pub const ALL: [CoreEvent; 5] = [
        CoreEvent::MetricGrid,
        CoreEvent::Arrival,
        CoreEvent::Chaos,
        CoreEvent::Heartbeat,
        CoreEvent::DrainDeadline,
    ];
}

/// Heap entry: the total order is `(time, priority, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    at: SimTime,
    priority: u8,
    seq: u64,
    kind: CoreEvent,
}

/// The deterministic event calendar.
///
/// A thin wrapper over `BinaryHeap<Reverse<Entry>>`: O(log n) push and pop,
/// O(1) peek of the earliest instant. Stale entries (a chaos heartbeat
/// delay moved the aggregator's due time after its event was enqueued) are
/// handled by the consumer re-validating against the producing layer on
/// pop and re-scheduling — lazy invalidation, never in-heap mutation.
#[derive(Debug, Default)]
pub struct EventCalendar {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
}

impl EventCalendar {
    /// An empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at `at`. Ties at the same instant break by the
    /// event's priority class, then by insertion order.
    pub fn schedule(&mut self, at: SimTime, kind: CoreEvent) {
        let entry = Entry { at, priority: kind.priority(), seq: self.seq, kind };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// The earliest scheduled instant, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// The next event's `(time, kind)` without popping it.
    pub fn peek(&self) -> Option<(SimTime, CoreEvent)> {
        self.heap.peek().map(|Reverse(e)| (e.at, e.kind))
    }

    /// Pop the next event due at or before `now`, in `(time, priority,
    /// seq)` order. Returns `None` once every remaining event is in the
    /// future.
    pub fn pop_due(&mut self, now: SimTime) -> Option<CoreEvent> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.at <= now => self.heap.pop().map(|Reverse(e)| e.kind),
            _ => None,
        }
    }

    /// Pop the next event unconditionally.
    pub fn pop(&mut self) -> Option<(SimTime, CoreEvent)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.kind))
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Every scheduled entry in pop order — `(time, priority, seq)` — for a
    /// control-plane snapshot (see crates/recovery). Heap iteration order is
    /// layout-dependent, so the export sorts; rebuilding via
    /// [`EventCalendar::from_entries`] re-pushes in this order, which
    /// preserves all tie-breaks (restored entries receive fresh ascending
    /// sequence numbers, and any entry scheduled after a restore is younger
    /// than every restored one — exactly as in the uninterrupted run).
    pub fn entries(&self) -> Vec<(SimTime, CoreEvent)> {
        let mut v: Vec<Entry> = self.heap.iter().map(|Reverse(e)| *e).collect();
        v.sort();
        v.into_iter().map(|e| (e.at, e.kind)).collect()
    }

    /// Rebuild a calendar from entries exported by
    /// [`EventCalendar::entries`].
    pub fn from_entries(entries: &[(SimTime, CoreEvent)]) -> Self {
        let mut cal = EventCalendar::new();
        for &(at, kind) in entries {
            cal.schedule(at, kind);
        }
        cal
    }
}

/// One event the loop actually applied, in application order — the record
/// type of the recovery crate's write-ahead log. The WAL acts as a
/// divergence fence: replaying from the last checkpoint must re-apply
/// exactly this sequence or the restored state did not capture something.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AppliedEvent {
    /// The instant the event was processed at.
    pub at: SimTime,
    /// The event class.
    pub kind: CoreEvent,
}

/// Snap a continuous due instant to the first tick-grid point at or after
/// it (grid anchored at t=0). The oracle loop only observes the world at
/// grid points, so an event scheduled for its grid-snapped processing
/// instant fires exactly where naive ticking would have acted on it.
/// Producers call this once per enqueue — quantization happens at the
/// calendar's edge, never inside event handlers.
pub fn grid_at_or_after(t: SimTime, tick_us: u64) -> SimTime {
    let tick_us = tick_us.max(1);
    let t_us = t.as_micros();
    SimTime::from_micros(t_us.div_ceil(tick_us) * tick_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_events_pop_in_priority_then_insertion_order() {
        // Enqueue every class at the same instant in shuffled order, twice
        // (two different shuffles), plus same-class duplicates: the pop
        // sequence must be identical — priority class first, then seq.
        let t = SimTime::from_millis(40);
        let shuffles: [&[CoreEvent]; 3] = [
            &[
                CoreEvent::Heartbeat,
                CoreEvent::Arrival,
                CoreEvent::DrainDeadline,
                CoreEvent::Chaos,
                CoreEvent::MetricGrid,
            ],
            &[
                CoreEvent::DrainDeadline,
                CoreEvent::MetricGrid,
                CoreEvent::Chaos,
                CoreEvent::Heartbeat,
                CoreEvent::Arrival,
            ],
            &[
                CoreEvent::Arrival,
                CoreEvent::Chaos,
                CoreEvent::MetricGrid,
                CoreEvent::DrainDeadline,
                CoreEvent::Heartbeat,
            ],
        ];
        for order in shuffles {
            let mut cal = EventCalendar::new();
            for &kind in order {
                cal.schedule(t, kind);
            }
            let mut popped = Vec::new();
            while let Some(k) = cal.pop_due(t) {
                popped.push(k);
            }
            assert_eq!(
                popped,
                vec![
                    CoreEvent::MetricGrid,
                    CoreEvent::Arrival,
                    CoreEvent::Chaos,
                    CoreEvent::Heartbeat,
                    CoreEvent::DrainDeadline,
                ],
                "pop order must not depend on push order"
            );
        }
    }

    #[test]
    fn same_class_ties_break_by_insertion_seq() {
        // The relaunch-queue convention: equal (time, priority) resolves by
        // monotone sequence number, i.e. FIFO.
        let mut cal = EventCalendar::new();
        let t = SimTime::from_millis(10);
        cal.schedule(t, CoreEvent::Arrival);
        cal.schedule(t, CoreEvent::Heartbeat);
        cal.schedule(t, CoreEvent::Arrival);
        assert_eq!(cal.pop(), Some((t, CoreEvent::Arrival)));
        assert_eq!(cal.pop(), Some((t, CoreEvent::Arrival)));
        assert_eq!(cal.pop(), Some((t, CoreEvent::Heartbeat)));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn time_dominates_priority() {
        let mut cal = EventCalendar::new();
        cal.schedule(SimTime::from_millis(20), CoreEvent::MetricGrid);
        cal.schedule(SimTime::from_millis(10), CoreEvent::DrainDeadline);
        assert_eq!(cal.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(cal.pop(), Some((SimTime::from_millis(10), CoreEvent::DrainDeadline)));
        assert_eq!(cal.pop(), Some((SimTime::from_millis(20), CoreEvent::MetricGrid)));
    }

    #[test]
    fn pop_due_leaves_future_events() {
        let mut cal = EventCalendar::new();
        cal.schedule(SimTime::from_millis(10), CoreEvent::Arrival);
        cal.schedule(SimTime::from_millis(30), CoreEvent::Heartbeat);
        assert_eq!(cal.pop_due(SimTime::from_millis(10)), Some(CoreEvent::Arrival));
        assert_eq!(cal.pop_due(SimTime::from_millis(10)), None);
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
    }

    #[test]
    fn entries_export_rebuilds_an_identical_calendar() {
        let mut cal = EventCalendar::new();
        let t = SimTime::from_millis(10);
        cal.schedule(SimTime::from_millis(30), CoreEvent::Heartbeat);
        cal.schedule(t, CoreEvent::Arrival);
        cal.schedule(t, CoreEvent::MetricGrid);
        cal.schedule(t, CoreEvent::Arrival); // same-class tie, FIFO
        let entries = cal.entries();
        assert_eq!(entries.len(), 4);
        let mut rebuilt = EventCalendar::from_entries(&entries);
        // Exhaustive pop comparison, including a post-restore schedule that
        // must tie-break younger than every restored entry.
        cal.schedule(t, CoreEvent::Arrival);
        rebuilt.schedule(t, CoreEvent::Arrival);
        loop {
            let (a, b) = (cal.pop(), rebuilt.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn grid_snap_matches_first_tick_at_or_after() {
        let tick = 10_000u64; // 10 ms
        let snap = |us: u64| grid_at_or_after(SimTime::from_micros(us), tick).as_micros();
        assert_eq!(snap(0), 0);
        assert_eq!(snap(1), 10_000);
        assert_eq!(snap(10_000), 10_000);
        assert_eq!(snap(10_001), 20_000);
        // The metric-cadence case: 100 ms due on a 30 ms grid snaps to 120.
        assert_eq!(grid_at_or_after(SimTime::from_millis(100), 30_000).as_micros(), 120_000);
    }
}
