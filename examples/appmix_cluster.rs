//! Run all four cluster schedulers over the Table I application mixes on
//! the ten-node P100 testbed and print the paper's headline comparison:
//! per-scheduler utilization percentiles, QoS violations per kilo-query,
//! crashes and normalized energy.
//!
//! ```sh
//! cargo run --release --example appmix_cluster [duration_secs] [mix]
//! ```

use kube_knots::core::experiment::{
    run_mix, scheduler_by_name, ExperimentConfig, CLUSTER_SCHEDULERS,
};
use kube_knots::core::metrics::RunReport;
use kube_knots::sim::time::SimDuration;
use kube_knots::workloads::AppMix;

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let only_mix: Option<usize> = args.next().and_then(|a| a.parse().ok());

    let cfg = ExperimentConfig { duration: SimDuration::from_secs(secs), ..Default::default() };

    for mix in AppMix::ALL {
        if only_mix.is_some_and(|m| m != mix.id()) {
            continue;
        }
        println!("== {mix} ({}s window, seed {}) ==", secs, cfg.seed);
        let mut reports: Vec<RunReport> = Vec::new();
        for name in CLUSTER_SCHEDULERS {
            let sched = scheduler_by_name(name).expect("known scheduler");
            let t0 = std::time::Instant::now();
            let report = run_mix(sched, mix, &cfg);
            eprintln!("   [{name} done in {:.1?}]", t0.elapsed());
            reports.push(report);
        }
        let base_energy = reports
            .iter()
            .find(|r| r.scheduler == "Uniform")
            .map(|r| r.energy_joules)
            .unwrap_or(1.0);

        println!(
            "{:<9} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7} {:>8} {:>7} {:>7} {:>9} {:>8}",
            "sched",
            "subm",
            "done",
            "a50%",
            "a90%",
            "a99%",
            "avg%",
            "viol/k",
            "crash",
            "energy",
            "lc_p99ms",
            "batchJCT"
        );
        for r in &reports {
            let (p50, p90, p99, _max) = r.active_quartet();
            println!(
                "{:<9} {:>6} {:>6} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>8.1} {:>7} {:>7.2} {:>9.0} {:>8.1}",
                r.scheduler,
                r.submitted,
                r.completed,
                p50,
                p90,
                p99,
                r.mean_active_util(),
                r.violations_per_kilo(),
                r.crashes,
                r.energy_joules / base_energy,
                r.lc_latency.p99 * 1000.0,
                r.batch_jct.avg,
            );
        }
        println!();
    }
}
