use knots_bench::figures::fig06_09_cluster::ClusterStudy;
use knots_bench::figures::fig12_dnn::DnnStudy;
use knots_core::experiment::ExperimentConfig;
use knots_obs::Obs;
use knots_sim::time::SimDuration;
use knots_workloads::dnn::DnnWorkloadConfig;
use std::time::Instant;

fn main() {
    let dnn_cfg = DnnWorkloadConfig {
        dlt_jobs: 60,
        dli_tasks: 150,
        duration: SimDuration::from_secs(120),
        time_scale: 1.0 / 240.0,
        seed: 42,
    };
    let t0 = Instant::now();
    let s = DnnStudy::run_threads(&dnn_cfg, 1);
    println!(
        "dnn serial: {:.0} ms ({} reports)",
        t0.elapsed().as_secs_f64() * 1e3,
        s.reports.len()
    );

    let cluster_cfg =
        ExperimentConfig { duration: SimDuration::from_secs(60), seed: 42, ..Default::default() };
    let t0 = Instant::now();
    let c = ClusterStudy::run_with_obs_threads(&cluster_cfg, &Obs::disabled(), 1);
    println!(
        "cluster serial: {:.0} ms ({} cells)",
        t0.elapsed().as_secs_f64() * 1e3,
        c.reports.len()
    );
}
