//! The §V-C deep-learning comparison: schedule 520 DL-training + 1400
//! DL-inference tasks on a 256-GPU simulated cluster under Res-Ag,
//! Gandiva, Tiresias and CBP+PP, and print the Fig. 12 / Table IV rows
//! (JCTs normalized to CBP+PP, DLI QoS violations per hour).
//!
//! ```sh
//! cargo run --release --example dnn_schedulers [--smoke]
//! ```

use kube_knots::core::experiment::{run_dnn, scheduler_by_name, DNN_SCHEDULERS};
use kube_knots::core::metrics::RunReport;
use kube_knots::workloads::dnn::DnnWorkloadConfig;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let workload = if smoke { DnnWorkloadConfig::smoke() } else { DnnWorkloadConfig::compressed() };
    println!(
        "DNN workload: {} DLT + {} DLI over {:.0}s (time scale {:.4})",
        workload.dlt_jobs,
        workload.dli_tasks,
        workload.duration.as_secs_f64(),
        workload.time_scale
    );

    let mut reports: Vec<RunReport> = Vec::new();
    for name in DNN_SCHEDULERS {
        let t0 = std::time::Instant::now();
        let report = run_dnn(scheduler_by_name(name).expect("known"), &workload);
        eprintln!("   [{name} done in {:.1?}]", t0.elapsed());
        reports.push(report);
    }
    let base = reports.iter().find(|r| r.scheduler == "CBP+PP").expect("CBP+PP present").clone();
    let hours = base.duration.as_secs_f64() / 3600.0 / workload.time_scale;

    println!("\nTable IV — JCT normalized to CBP+PP (avg / median / p99):");
    for r in &reports {
        let (avg, med, p99) = r.all_jct.normalized_to(&base.all_jct);
        println!(
            "{:<9} {:>5.2}x {:>5.2}x {:>5.2}x   (done {}/{}, preempt {}, migr {}, crash {})",
            r.scheduler,
            avg,
            med,
            p99,
            r.completed,
            r.submitted,
            r.preemptions,
            r.migrations,
            r.crashes
        );
    }
    println!("\nFig. 12b — DLI QoS violations per (uncompressed) hour:");
    for r in &reports {
        println!(
            "{:<9} {:>7.1} viol/hr  ({} of {} queries; p99 latency {:.0} ms)",
            r.scheduler,
            r.lc_violations as f64 / hours,
            r.lc_violations,
            r.lc_completed,
            r.lc_latency.p99 * 1000.0
        );
    }
}
