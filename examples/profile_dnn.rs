use knots_core::experiment::{run_dnn_traced, scheduler_by_name};
use knots_sim::time::SimDuration;
use knots_workloads::dnn::DnnWorkloadConfig;
use std::time::Instant;

fn main() {
    let dnn_cfg = DnnWorkloadConfig {
        dlt_jobs: 60,
        dli_tasks: 150,
        duration: SimDuration::from_secs(120),
        time_scale: 1.0 / 240.0,
        seed: 42,
    };
    for name in ["Res-Ag", "CBP+PP"] {
        let t0 = Instant::now();
        let r = run_dnn_traced(
            scheduler_by_name(name).unwrap(),
            &dnn_cfg,
            knots_obs::Obs::disabled(),
            knots_chaos::FaultPlan::empty(),
            knots_trace::Tracer::disabled(),
        );
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("{name}: wall {ms:.1} ms, digest {:016x}", knots_analyzer::report_digest(&r));
        for p in &r.phase_timings {
            println!(
                "  {:-10} count {:8} total_ms {:10.2} mean_us {:8.2}",
                p.phase,
                p.count,
                p.count as f64 * p.mean_us / 1e3,
                p.mean_us
            );
        }
    }
}
