use knots_core::config::LoopMode;
use knots_core::experiment::{run_schedule, scheduler_by_name, ExperimentConfig};
use knots_sim::cluster::ClusterConfig;
use knots_sim::time::SimDuration;
use knots_workloads::loadgen::{LoadGenConfig, LoadGenerator};
use knots_workloads::AppMix;
use std::time::Instant;

fn main() {
    let mut cfg =
        ExperimentConfig { duration: SimDuration::from_secs(60), seed: 42, ..Default::default() };
    cfg.orch.heartbeat = SimDuration::from_millis(50);

    let gen_cfg = LoadGenConfig::new(cfg.duration, cfg.seed);
    let t0 = Instant::now();
    let schedule = LoadGenerator::generate(AppMix::Mix2, &gen_cfg);
    println!("generate: {:.2} ms, {} pods", t0.elapsed().as_secs_f64() * 1e3, schedule.len());

    for mode in [LoopMode::Naive, LoopMode::Calendar, LoopMode::EventQueue] {
        cfg.orch.naive_ticking = mode == LoopMode::Naive;
        cfg.orch.mode = mode;
        for name in ["Res-Ag", "CBP+PP"] {
            let mut best = f64::MAX;
            let mut report = None;
            for _ in 0..5 {
                let mut cluster_cfg =
                    ClusterConfig::homogeneous(cfg.nodes, knots_sim::config::TESTBED_GPU);
                cluster_cfg.prewarm_images =
                    AppMix::Mix2.lc_services().iter().map(|s| s.image()).collect();
                let t0 = Instant::now();
                let r = run_schedule(
                    scheduler_by_name(name).unwrap(),
                    &schedule,
                    cluster_cfg,
                    cfg.orch,
                );
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                if ms < best {
                    best = ms;
                    report = Some(r);
                }
            }
            let r = report.unwrap();
            println!(
                "{mode:?} {name}: run {best:.2} ms digest {:016x} events {}",
                knots_analyzer::report_digest(&r),
                r.events_processed
            );
            for p in &r.phase_timings {
                println!(
                    "  {:-10} count {:8} total_ms {:8.2}",
                    p.phase,
                    p.count,
                    p.count as f64 * p.mean_us / 1e3
                );
            }
        }
    }
}
