//! Quickstart: build a ten-node GPU cluster, generate a Table I workload
//! mix, schedule it with the full Kube-Knots policy (CBP+PP), and print the
//! headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kube_knots::core::prelude::*;

fn main() {
    // 1. A workload: App-Mix-2 (medium load, medium burstiness) over two
    //    simulated minutes, deterministic under the seed.
    let cfg =
        ExperimentConfig { duration: SimDuration::from_secs(120), seed: 7, ..Default::default() };

    // 2. The scheduler under test: CBP+PP, the paper's full policy
    //    (80th-percentile harvesting + Spearman anti-co-location + AR(1)
    //    peak prediction + consolidation).
    let report = run_mix(Box::new(CbpPp::new()), AppMix::Mix2, &cfg);

    // 3. What happened.
    println!("scheduler        : {}", report.scheduler);
    println!("pods submitted   : {}", report.submitted);
    println!("pods completed   : {}", report.completed);
    println!("OOM crashes      : {}", report.crashes);
    let (p50, p90, p99, max) = report.active_quartet();
    println!("active GPU util  : p50 {p50:.0}%  p90 {p90:.0}%  p99 {p99:.0}%  max {max:.0}%");
    println!(
        "inference QoS    : {} violations in {} queries ({:.1} per kilo)",
        report.lc_violations,
        report.lc_completed,
        report.violations_per_kilo()
    );
    println!(
        "batch JCT        : avg {:.1}s  median {:.1}s  p99 {:.1}s",
        report.batch_jct.avg, report.batch_jct.median, report.batch_jct.p99
    );
    println!("GPU energy       : {:.1} Wh", report.energy_joules / 3600.0);

    assert!(report.completed > 0, "the run must make progress");
}
