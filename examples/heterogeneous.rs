//! Heterogeneous pool demo: the Knots design figure (Fig. 5) shows a mixed
//! P100 / M40 / V100 / K80 fleet behind one head node. This example runs
//! App-Mix-2 under CBP+PP on such a pool and reports per-device-model
//! throughput — faster devices complete more work per unit of occupancy.
//!
//! ```sh
//! cargo run --release --example heterogeneous
//! ```

use kube_knots::core::prelude::*;
use kube_knots::workloads::loadgen::{LoadGenConfig, LoadGenerator};
use std::collections::HashMap;

fn main() {
    let duration = SimDuration::from_secs(120);
    let schedule = LoadGenerator::generate(AppMix::Mix2, &LoadGenConfig::new(duration, 21));

    let mut cluster_cfg = ClusterConfig::heterogeneous(10);
    cluster_cfg.prewarm_images = AppMix::Mix2.lc_services().iter().map(|s| s.image()).collect();
    let mut knots =
        KubeKnots::new(cluster_cfg, Box::new(CbpPp::new()), OrchestratorConfig::default());
    let report = knots.run_schedule(&schedule);

    // Per-model completion accounting from the event log.
    let mut per_model: HashMap<String, (usize, f64)> = HashMap::new(); // (completions, busy-samples)
    for e in knots.cluster().events() {
        if let kube_knots::sim::events::EventKind::Completed { node } = e.kind {
            let model = knots.cluster().node(node).unwrap().gpu().spec().model.to_string();
            per_model.entry(model).or_default().0 += 1;
        }
    }
    for node in knots.cluster().nodes() {
        let model = node.gpu().spec().model.to_string();
        per_model.entry(model).or_default().1 += node.energy().joules();
    }

    println!("pods completed: {}/{}", report.completed, report.submitted);
    println!("QoS violations: {:.1} per kilo query", report.violations_per_kilo());
    println!("\nper device model:");
    let mut models: Vec<_> = per_model.iter().collect();
    models.sort_by_key(|(m, _)| m.to_string());
    for (model, (completions, joules)) in models {
        println!(
            "  {model:<5} completions {completions:>5}   energy {:>8.1} kJ   ({:.2} completions/kJ)",
            joules / 1000.0,
            *completions as f64 / (joules / 1000.0).max(1e-9)
        );
    }

    assert!(report.completed > 0);
}
