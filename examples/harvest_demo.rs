//! Harvesting up close: a single GPU node, one over-provisioned batch pod,
//! and the CBP resize loop reclaiming the spare memory so an inference
//! query can co-locate — the core Kube-Knots mechanism (§IV-C) on the
//! smallest possible stage.
//!
//! The demo drives the orchestrator manually so every resize and placement
//! is visible tick by tick.
//!
//! ```sh
//! cargo run --release --example harvest_demo
//! ```

use kube_knots::core::prelude::*;
use kube_knots::sim::events::EventKind;
use kube_knots::workloads::djinn::InferenceService;
use kube_knots::workloads::rodinia::RodiniaApp;

fn main() {
    // One P100 node, orchestrated by CBP+PP.
    let mut cluster_cfg = ClusterConfig::homogeneous(1, GpuModel::P100);
    cluster_cfg.prewarm_images =
        vec![RodiniaApp::MummerGpu.image(), InferenceService::Face.image()];
    let mut knots =
        KubeKnots::new(cluster_cfg, Box::new(CbpPp::new()), OrchestratorConfig::default());

    // A stream of mummergpu jobs that *request* far more than they use
    // (80% overstatement), plus face-recognition queries arriving behind
    // them. Without harvesting, the requests alone would exhaust the GPU.
    let mut schedule = Vec::new();
    for i in 0..6 {
        let mut spec = RodiniaApp::MummerGpu.pod_spec(0.6, 0.8);
        spec.name = format!("mummergpu-{i}");
        schedule.push(kube_knots::workloads::ScheduledPod { at: SimTime::from_secs(i * 8), spec });
    }
    for i in 0..40 {
        let mut spec = InferenceService::Face.pod_spec(1, true);
        spec.name = "face".to_string();
        let _ = i;
        schedule.push(kube_knots::workloads::ScheduledPod {
            at: SimTime::from_millis(2_000 + i * 900),
            spec,
        });
    }
    schedule.sort_by_key(|s| s.at);

    let report = knots.run_schedule(&schedule);

    // Narrate the interesting events.
    let mut resizes_down = 0usize;
    let mut resizes_up = 0usize;
    let mut growth_configs = 0usize;
    for e in knots.cluster().events() {
        match e.kind {
            EventKind::Resized { from_mb, to_mb } if to_mb < from_mb => {
                if resizes_down < 5 {
                    println!(
                        "[{:>8}] harvest: {} {:.0} MB -> {:.0} MB",
                        e.at,
                        e.pod.map(|p| p.to_string()).unwrap_or_default(),
                        from_mb,
                        to_mb
                    );
                }
                resizes_down += 1;
            }
            EventKind::Resized { .. } => resizes_up += 1,
            _ => {}
        }
        if matches!(e.kind, EventKind::Submitted) {
            // count growth configurations separately below
        }
    }
    for id in knots.cluster().completed_pods().map(|(id, _)| id) {
        if knots.cluster().pod(id).is_some_and(|p| p.spec().allow_growth) {
            growth_configs += 1;
        }
    }

    println!("---");
    println!("pods completed          : {}/{}", report.completed, report.submitted);
    println!("harvest resizes (down)  : {resizes_down}");
    println!("grow-back resizes (up)  : {resizes_up}");
    println!("TF pods set allow_growth: {growth_configs}");
    println!("OOM crashes             : {}", report.crashes);
    println!(
        "face query latency      : median {:.0} ms, p99 {:.0} ms ({} violations)",
        report.lc_latency.median * 1000.0,
        report.lc_latency.p99 * 1000.0,
        report.lc_violations
    );

    assert!(resizes_down > 0, "harvesting must have fired");
    assert!(growth_configs > 0, "greedy queries must have been configured");
}
