//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `LockResult`s. A poisoned std lock (a writer panicked) is recovered
//! rather than propagated — matching parking_lot, which has no poisoning.
//!
//! Under `--cfg loom` the same API wraps the `loom` shim's model-aware
//! primitives instead, so types built on this crate (the telemetry TSDB's
//! batched writer, for one) can be driven through exhaustive interleaving
//! tests with `loom::model` unchanged. The exported guard type aliases
//! (`MutexGuard`, `RwLockReadGuard`, `RwLockWriteGuard`) track the active
//! backend; code that names a guard type must spell it through this crate.

#![forbid(unsafe_code)]

#[cfg(not(loom))]
use std::sync as backend;

#[cfg(loom)]
use loom::sync as backend;

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = backend::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = backend::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = backend::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(backend::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(backend::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(backend::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(backend::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
