//! Offline shim of the `loom` model checker.
//!
//! Real loom instruments atomics and explores thread interleavings with
//! state reduction. This shim implements the same *surface* — `model()`,
//! `loom::thread`, `loom::sync` — over a hand-rolled cooperative scheduler:
//! every model thread is a real OS thread, but only one runs at a time, and
//! each operation on a shimmed primitive is a schedule point. [`model`]
//! drives a depth-first search over all scheduling decisions (bounded by a
//! preemption budget and an execution cap), so a test body runs once per
//! distinct explored interleaving.
//!
//! What the search can find, deterministically and without `unsafe`:
//!
//! * **Deadlocks** — when every live thread is blocked the execution aborts
//!   and `model()` panics with a `deadlock` message (use
//!   `#[should_panic(expected = "deadlock")]` to pin one).
//! * **Interleaving-dependent assertion failures** — a user panic in any
//!   explored execution is re-raised from `model()`.
//! * **Lost wakeups / ordering bugs** — blocked receivers and condvar
//!   waiters that no one ever wakes surface as deadlocks.
//!
//! What it cannot find: data races on raw memory (there are no shimmed
//! atomics/cells — the workspace's parallel core is lock-and-channel based)
//! and races outside the shimmed primitives. The CI ThreadSanitizer leg
//! covers that axis.
//!
//! Code under test opts in with `--cfg loom` (see `crates/sim/src/pool.rs`):
//! outside a [`model`] call every primitive degrades to plain `std::sync`
//! behavior, so a `--cfg loom` build still passes ordinary tests.

pub mod sync;
pub mod thread;

mod rt;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Run `f` once per explored interleaving of its model threads.
///
/// Panics (re-raising the first failure) as soon as any execution fails;
/// returns normally once the schedule space is exhausted (or the bounded
/// exploration budget is spent).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut prefix: Vec<rt::Branch> = Vec::new();
    for _ in 0..rt::MAX_EXECUTIONS {
        let rtm = Arc::new(rt::Rt::new(std::mem::take(&mut prefix)));
        let rt0 = Arc::clone(&rtm);
        let f0 = Arc::clone(&f);
        // The model closure itself is model thread 0.
        let h0 = std::thread::spawn(move || {
            rt::install(Arc::clone(&rt0), 0);
            let r = catch_unwind(AssertUnwindSafe(|| {
                rt0.wait_first_schedule(0);
                f0()
            }));
            rt0.retire(0, r.err());
        });
        let _ = h0.join();
        // Spawned model threads park on the scheduler; once the execution
        // is over (normally or via abort) they all exit and join cleanly.
        loop {
            let hs = rtm.take_os_handles();
            if hs.is_empty() {
                break;
            }
            for h in hs {
                let _ = h.join();
            }
        }
        let (payload, abort, mut schedule) = rtm.outcome();
        if let Some(p) = payload {
            std::panic::resume_unwind(p);
        }
        if let Some(msg) = abort {
            panic!("{msg}");
        }
        // Depth-first backtrack: flip the deepest decision with an untried
        // alternative; done when none remains.
        loop {
            match schedule.last().copied() {
                None => return,
                Some(b) if b.chosen + 1 < b.total => {
                    if let Some(last) = schedule.last_mut() {
                        last.chosen += 1;
                    }
                    break;
                }
                Some(_) => {
                    schedule.pop();
                }
            }
        }
        prefix = schedule;
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Arc, Condvar, Mutex};
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mutex_works_outside_a_model() {
        let m = Mutex::new(1);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 2);
        assert_eq!(m.into_inner().unwrap(), 2);
    }

    #[test]
    fn spawn_and_join_return_values() {
        model(|| {
            let h = thread::spawn(|| 41 + 1);
            assert_eq!(h.join().unwrap(), 42);
        });
    }

    #[test]
    fn locked_increments_never_lose_updates() {
        model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let h = thread::spawn(move || *m2.lock().unwrap() += 1);
            *m.lock().unwrap() += 1;
            h.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    fn exploration_finds_the_read_modify_write_race() {
        // Classic lost update: read under one lock acquisition, write under
        // another. Some interleaving must produce 1 and some 2 — proving
        // the search actually explores distinct schedules.
        let saw = Arc::new((AtomicUsize::new(0), AtomicUsize::new(0)));
        let saw2 = Arc::clone(&saw);
        model(move || {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let h = thread::spawn(move || {
                let v = *m2.lock().unwrap();
                *m2.lock().unwrap() = v + 1;
            });
            let v = *m.lock().unwrap();
            *m.lock().unwrap() = v + 1;
            h.join().unwrap();
            match *m.lock().unwrap() {
                1 => saw2.0.fetch_add(1, Ordering::Relaxed),
                2 => saw2.1.fetch_add(1, Ordering::Relaxed),
                other => panic!("impossible count {other}"),
            };
        });
        assert!(saw.0.load(Ordering::Relaxed) > 0, "lost-update interleaving never explored");
        assert!(saw.1.load(Ordering::Relaxed) > 0, "serial interleaving never explored");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn abba_lock_order_deadlocks() {
        // The dynamic counterpart of analyzer rule C2: opposite-order
        // nested acquisition must deadlock in some explored schedule.
        model(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop(_ga);
            drop(_gb);
            let _ = h.join();
        });
    }

    #[test]
    #[should_panic(expected = "interleaving-dependent")]
    fn user_panics_propagate_out_of_model() {
        model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let h = thread::spawn(move || *m2.lock().unwrap() += 1);
            let seen = *m.lock().unwrap();
            h.join().unwrap();
            // Fails only in schedules where the child ran first.
            assert_eq!(seen, 0, "interleaving-dependent failure");
        });
    }

    #[test]
    fn mpsc_delivers_in_order_and_disconnects() {
        model(|| {
            let (tx, rx) = sync::mpsc::channel::<u32>();
            let h = thread::spawn(move || {
                tx.send(1).unwrap();
                tx.send(2).unwrap();
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap();
            assert_eq!(rx.recv(), Err(sync::mpsc::RecvError));
        });
    }

    #[test]
    fn condvar_wakes_the_waiter() {
        model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let h = thread::spawn(move || {
                let mut started = pair2.0.lock().unwrap();
                *started = true;
                pair2.1.notify_one();
                drop(started);
            });
            let mut started = pair.0.lock().unwrap();
            while !*started {
                started = pair.1.wait(started).unwrap();
            }
            drop(started);
            h.join().unwrap();
        });
    }

    #[test]
    fn rwlock_readers_share_and_writers_exclude() {
        model(|| {
            let l = Arc::new(sync::RwLock::new(0u32));
            let l2 = Arc::clone(&l);
            let h = thread::spawn(move || *l2.write().unwrap() += 1);
            let seen = *l.read().unwrap();
            assert!(seen == 0 || seen == 1);
            h.join().unwrap();
            assert_eq!(*l.read().unwrap(), 1);
        });
    }
}
