//! Model-aware replacement for `std::thread` (the subset the workspace
//! uses: `spawn`, `JoinHandle::join`, `yield_now`).
//!
//! Inside a [`crate::model`] execution, `spawn` registers a new model
//! thread with the scheduler and backs it with a real OS thread that only
//! runs while the scheduler says so. Outside a model, everything degrades
//! to plain `std::thread` behavior so code compiled with `--cfg loom` still
//! works when exercised by ordinary tests.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::rt;

type Slot<T> = Arc<Mutex<Option<std::thread::Result<T>>>>;

/// Handle to a spawned (model or plain) thread.
#[derive(Debug)]
pub struct JoinHandle<T> {
    /// Model tid when spawned inside a model.
    target: usize,
    slot: Slot<T>,
    /// The real handle when spawned outside a model.
    os: Option<std::thread::JoinHandle<()>>,
}

fn store<T>(slot: &Slot<T>, r: std::thread::Result<T>) {
    *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
}

/// Spawn a thread. See the module docs for model vs. plain behavior.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot: Slot<T> = Arc::new(Mutex::new(None));
    if let Some((rtm, tid)) = rt::current() {
        let target = rtm.register_thread();
        let slot2 = Arc::clone(&slot);
        let rt2 = Arc::clone(&rtm);
        let os = std::thread::spawn(move || {
            rt::install(Arc::clone(&rt2), target);
            let r = catch_unwind(AssertUnwindSafe(|| {
                rt2.wait_first_schedule(target);
                f()
            }));
            let panicked = match r {
                Ok(v) => {
                    store(&slot2, Ok(v));
                    None
                }
                Err(p) => Some(p),
            };
            rt2.retire(target, panicked);
        });
        rtm.push_os_handle(os);
        rtm.switch(tid, true); // branch point: the child may run first
        JoinHandle { target, slot, os: None }
    } else {
        let slot2 = Arc::clone(&slot);
        let os = std::thread::spawn(move || {
            let r = catch_unwind(AssertUnwindSafe(f));
            store(&slot2, r);
        });
        JoinHandle { target: usize::MAX, slot, os: Some(os) }
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result (`Err` if it
    /// panicked, matching `std::thread::JoinHandle::join`).
    pub fn join(mut self) -> std::thread::Result<T> {
        if let Some(os) = self.os.take() {
            let _ = os.join();
        } else if let Some((rtm, tid)) = rt::current() {
            rtm.join_wait(tid, self.target);
        }
        let taken = self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        match taken {
            Some(r) => r,
            // The thread panicked (its payload is re-raised by `model()`)
            // or the model aborted before it produced a value.
            None => Err(Box::new("loom: joined thread produced no value")),
        }
    }
}

/// Yield: a pure schedule point inside a model, `std::thread::yield_now`
/// outside.
pub fn yield_now() {
    if let Some((rtm, tid)) = rt::current() {
        rtm.switch(tid, true);
    } else {
        std::thread::yield_now();
    }
}
