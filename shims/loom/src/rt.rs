//! The cooperative scheduler behind [`crate::model`].
//!
//! One OS thread per model thread, but only one ever runs at a time: every
//! operation on a shimmed primitive calls back into [`Rt::switch`], which
//! picks the next thread to run. When more than one thread is runnable the
//! choice is a *branch point*; the sequence of branch decisions taken in one
//! execution forms a schedule, and [`crate::model`] drives a depth-first
//! search over all schedules (bounded by a preemption budget and an
//! execution cap) by replaying a recorded prefix and flipping the last
//! undone decision.
//!
//! The runtime tracks only *model* state — which thread owns which lock,
//! who is parked on which condvar or channel. The protected data itself
//! lives in ordinary `std::sync` primitives inside the shimmed types;
//! because model-level ownership already guarantees exclusivity, those std
//! locks never contend and the whole shim stays free of `unsafe`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard cap on distinct executions explored per [`crate::model`] call.
/// When a model is too big to exhaust, exploration stops here: coverage is
/// partial but the test still terminates.
pub(crate) const MAX_EXECUTIONS: usize = 200_000;
/// Per-execution step cap; tripping it aborts the model (livelock guard).
const MAX_STEPS: usize = 100_000;
/// Maximum forced preemptions per execution. Bounding preemptions is what
/// keeps the search tractable; most real interleaving bugs need only one
/// or two (CHESS-style context-bound checking).
const PREEMPTION_BOUND: usize = 2;

/// One scheduling decision: at a branch point with `total` runnable
/// threads, the `chosen`-th (in sorted tid order) was picked.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Branch {
    pub chosen: usize,
    pub total: usize,
}

/// Model state of one synchronization object (mutex, rwlock, condvar or
/// channel — unused fields stay at their defaults).
#[derive(Debug, Default)]
struct ObjState {
    locked: bool,
    writer: bool,
    readers: usize,
    /// Threads blocked trying to acquire / receive, woken all-at-once so
    /// the scheduler explores every acquisition order.
    waiters: Vec<usize>,
    /// Threads parked in `Condvar::wait`, FIFO.
    cv_waiters: Vec<usize>,
}

struct State {
    /// The single thread currently allowed to run (`None` once the
    /// execution has ended).
    active: Option<usize>,
    runnable: BTreeSet<usize>,
    blocked: BTreeSet<usize>,
    finished: BTreeSet<usize>,
    /// Next thread id (tid 0 is the model closure itself).
    spawned: usize,
    objs: BTreeMap<usize, ObjState>,
    next_obj: usize,
    /// tid → threads blocked in `join` on it.
    join_waiters: BTreeMap<usize, Vec<usize>>,
    /// Replayed prefix plus decisions appended this execution.
    schedule: Vec<Branch>,
    depth: usize,
    preemptions: usize,
    steps: usize,
    /// Set once something went wrong (deadlock, user panic, step limit);
    /// every thread unwinds out at its next scheduling point.
    abort: Option<String>,
    /// First *user* panic of the execution, re-raised by `model()`.
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
}

/// The per-execution runtime shared by every model thread.
pub(crate) struct Rt {
    state: Mutex<State>,
    cv: Condvar,
    /// OS handles of spawned model threads, joined by `model()` at the end
    /// of each execution.
    os: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Rt>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The runtime and tid of the calling thread, if it is a model thread.
/// Cloned out so no `RefCell` borrow is held across blocking or unwinding.
pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Register the calling OS thread as model thread `tid`.
pub(crate) fn install(rt: Arc<Rt>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((rt, tid)));
}

impl Rt {
    pub fn new(prefix: Vec<Branch>) -> Self {
        let mut runnable = BTreeSet::new();
        runnable.insert(0);
        Rt {
            state: Mutex::new(State {
                active: Some(0),
                runnable,
                blocked: BTreeSet::new(),
                finished: BTreeSet::new(),
                spawned: 1,
                objs: BTreeMap::new(),
                next_obj: 0,
                join_waiters: BTreeMap::new(),
                schedule: prefix,
                depth: 0,
                preemptions: 0,
                steps: 0,
                abort: None,
                panic_payload: None,
            }),
            cv: Condvar::new(),
            os: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Allocate a fresh object id (primitives register lazily on first use
    /// inside a model; ids are per-execution because the model closure
    /// recreates its primitives each run).
    pub fn alloc_obj(&self) -> usize {
        let mut s = self.lock();
        let id = s.next_obj;
        s.next_obj += 1;
        id
    }

    /// A schedule point: offer the scheduler the chance to run another
    /// thread. `self_runnable` says whether the caller may be picked again
    /// immediately (false = it just blocked on something).
    pub fn switch(&self, tid: usize, self_runnable: bool) {
        if std::thread::panicking() {
            return;
        }
        let s = self.lock();
        self.switch_locked(s, tid, self_runnable);
    }

    fn switch_locked(&self, mut s: MutexGuard<'_, State>, tid: usize, self_runnable: bool) {
        if std::thread::panicking() {
            // Unwinding through a guard Drop: never block, never re-panic.
            return;
        }
        if s.abort.is_some() {
            drop(s);
            panic!("loom: model aborted");
        }
        s.steps += 1;
        if s.steps > MAX_STEPS {
            s.abort = Some("loom: step limit exceeded (livelock?)".into());
            self.cv.notify_all();
            drop(s);
            panic!("loom: model aborted");
        }
        if self_runnable {
            s.runnable.insert(tid);
        } else {
            s.runnable.remove(&tid);
            s.blocked.insert(tid);
        }
        self.pick_next(&mut s, Some(tid));
        while s.active != Some(tid) {
            if s.abort.is_some() {
                drop(s);
                panic!("loom: model aborted");
            }
            if s.active.is_none() {
                // Execution over while we were parked (only reachable for
                // never-joined threads); just exit quietly.
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        s.blocked.remove(&tid);
        s.runnable.insert(tid);
    }

    /// Choose the next active thread. Replays the recorded schedule prefix,
    /// then appends fresh decisions; deterministic because the runnable set
    /// is iterated in sorted order and every input to the choice is itself
    /// a deterministic function of earlier choices.
    fn pick_next(&self, s: &mut State, cur: Option<usize>) {
        let choices: Vec<usize> = s.runnable.iter().copied().collect();
        if choices.is_empty() {
            s.active = None;
            if !s.blocked.is_empty() {
                s.abort = Some("loom: deadlock detected (every live thread is blocked)".into());
            }
            self.cv.notify_all();
            return;
        }
        let allowed = match cur {
            Some(c) if s.preemptions >= PREEMPTION_BOUND && choices.contains(&c) => vec![c],
            _ => choices,
        };
        let next = if allowed.len() == 1 {
            allowed[0]
        } else {
            let d = s.depth;
            let chosen = if d < s.schedule.len() {
                s.schedule[d].chosen.min(allowed.len() - 1)
            } else {
                s.schedule.push(Branch { chosen: 0, total: allowed.len() });
                0
            };
            s.depth += 1;
            allowed[chosen]
        };
        if let Some(c) = cur {
            if next != c && s.runnable.contains(&c) {
                s.preemptions += 1;
            }
        }
        s.active = Some(next);
        self.cv.notify_all();
    }

    /// Park the caller on `obj`'s waiter list and hand off the schedule.
    fn block_on_obj(&self, mut s: MutexGuard<'_, State>, tid: usize, id: usize) {
        s.objs.entry(id).or_default().waiters.push(tid);
        self.switch_locked(s, tid, false);
    }

    // ---- mutex ----

    pub fn mutex_lock(&self, tid: usize, id: usize) {
        if std::thread::panicking() {
            return;
        }
        self.switch(tid, true); // others may race for the lock first
        loop {
            let mut s = self.lock();
            if s.abort.is_some() {
                drop(s);
                panic!("loom: model aborted");
            }
            let o = s.objs.entry(id).or_default();
            if !o.locked {
                o.locked = true;
                return;
            }
            self.block_on_obj(s, tid, id);
        }
    }

    pub fn mutex_unlock(&self, tid: usize, id: usize) {
        let mut s = self.lock();
        {
            let o = s.objs.entry(id).or_default();
            o.locked = false;
        }
        self.wake_obj_waiters(&mut s, id);
        self.switch_locked(s, tid, true);
    }

    /// Move every waiter of `id` back to runnable; they re-contend, and the
    /// scheduler decides who wins (exploring all acquisition orders).
    fn wake_obj_waiters(&self, s: &mut State, id: usize) {
        let ws = std::mem::take(&mut s.objs.entry(id).or_default().waiters);
        for w in ws {
            s.blocked.remove(&w);
            s.runnable.insert(w);
        }
    }

    // ---- rwlock ----

    pub fn rw_write(&self, tid: usize, id: usize) {
        if std::thread::panicking() {
            return;
        }
        self.switch(tid, true);
        loop {
            let mut s = self.lock();
            if s.abort.is_some() {
                drop(s);
                panic!("loom: model aborted");
            }
            let o = s.objs.entry(id).or_default();
            if !o.writer && o.readers == 0 {
                o.writer = true;
                return;
            }
            self.block_on_obj(s, tid, id);
        }
    }

    pub fn rw_read(&self, tid: usize, id: usize) {
        if std::thread::panicking() {
            return;
        }
        self.switch(tid, true);
        loop {
            let mut s = self.lock();
            if s.abort.is_some() {
                drop(s);
                panic!("loom: model aborted");
            }
            let o = s.objs.entry(id).or_default();
            if !o.writer {
                o.readers += 1;
                return;
            }
            self.block_on_obj(s, tid, id);
        }
    }

    pub fn rw_unlock_write(&self, tid: usize, id: usize) {
        let mut s = self.lock();
        s.objs.entry(id).or_default().writer = false;
        self.wake_obj_waiters(&mut s, id);
        self.switch_locked(s, tid, true);
    }

    pub fn rw_unlock_read(&self, tid: usize, id: usize) {
        let mut s = self.lock();
        {
            let o = s.objs.entry(id).or_default();
            o.readers = o.readers.saturating_sub(1);
        }
        self.wake_obj_waiters(&mut s, id);
        self.switch_locked(s, tid, true);
    }

    // ---- condvar ----

    /// Atomically release mutex `mx_id` and park on condvar `cv_id`; on
    /// wake-up, re-acquire the mutex before returning.
    pub fn condvar_wait(&self, tid: usize, cv_id: usize, mx_id: usize) {
        if std::thread::panicking() {
            return;
        }
        let mut s = self.lock();
        s.objs.entry(cv_id).or_default().cv_waiters.push(tid);
        s.objs.entry(mx_id).or_default().locked = false;
        self.wake_obj_waiters(&mut s, mx_id);
        self.switch_locked(s, tid, false); // parked until notified
        loop {
            let mut s = self.lock();
            if s.abort.is_some() {
                drop(s);
                panic!("loom: model aborted");
            }
            let o = s.objs.entry(mx_id).or_default();
            if !o.locked {
                o.locked = true;
                return;
            }
            self.block_on_obj(s, tid, mx_id);
        }
    }

    pub fn condvar_notify(&self, tid: usize, cv_id: usize, all: bool) {
        let mut s = self.lock();
        let o = s.objs.entry(cv_id).or_default();
        let n = if all { o.cv_waiters.len() } else { o.cv_waiters.len().min(1) };
        let woken: Vec<usize> = o.cv_waiters.drain(..n).collect();
        for w in woken {
            s.blocked.remove(&w);
            s.runnable.insert(w);
        }
        self.switch_locked(s, tid, true);
    }

    // ---- channels ----

    /// Park the caller waiting for channel `id` activity.
    pub fn chan_block(&self, tid: usize, id: usize) {
        if std::thread::panicking() {
            return;
        }
        let s = self.lock();
        self.block_on_obj(s, tid, id);
    }

    /// Wake every thread parked on channel `id` (new message, sender gone).
    pub fn chan_wake(&self, id: usize) {
        let mut s = self.lock();
        self.wake_obj_waiters(&mut s, id);
        self.cv.notify_all();
    }

    // ---- threads ----

    /// Reserve a tid for a thread about to be spawned.
    pub fn register_thread(&self) -> usize {
        let mut s = self.lock();
        let tid = s.spawned;
        s.spawned += 1;
        s.runnable.insert(tid);
        tid
    }

    pub fn push_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(h);
    }

    pub fn take_os_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut self.os.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Block a freshly spawned OS thread until the scheduler first picks it.
    pub fn wait_first_schedule(&self, tid: usize) {
        let mut s = self.lock();
        while s.active != Some(tid) {
            if s.abort.is_some() {
                drop(s);
                panic!("loom: model aborted");
            }
            if s.active.is_none() {
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Thread epilogue: record the outcome, wake joiners, hand off.
    pub fn retire(&self, tid: usize, panicked: Option<Box<dyn std::any::Any + Send>>) {
        let mut s = self.lock();
        s.runnable.remove(&tid);
        s.blocked.remove(&tid);
        s.finished.insert(tid);
        if let Some(p) = panicked {
            // Scheduler-induced unwinds are not findings; keep only the
            // first real user panic for `model()` to re-raise.
            let induced = p
                .downcast_ref::<&str>()
                .is_some_and(|m| m.starts_with("loom: model aborted"))
                || p.downcast_ref::<String>().is_some_and(|m| m.starts_with("loom: model aborted"));
            if !induced && s.panic_payload.is_none() {
                s.abort = Some("loom: a model thread panicked".into());
                s.panic_payload = Some(p);
            }
        }
        if let Some(ws) = s.join_waiters.remove(&tid) {
            for w in ws {
                s.blocked.remove(&w);
                s.runnable.insert(w);
            }
        }
        self.pick_next(&mut s, None);
    }

    /// Block until thread `target` has retired.
    pub fn join_wait(&self, tid: usize, target: usize) {
        if std::thread::panicking() {
            return;
        }
        self.switch(tid, true);
        loop {
            let mut s = self.lock();
            if s.finished.contains(&target) {
                return;
            }
            if s.abort.is_some() {
                drop(s);
                panic!("loom: model aborted");
            }
            s.join_waiters.entry(target).or_default().push(tid);
            self.switch_locked(s, tid, false);
        }
    }

    /// End-of-execution bookkeeping for `model()`: the first user panic (if
    /// any), the abort reason (if any), and the recorded schedule.
    pub fn outcome(&self) -> (Option<Box<dyn std::any::Any + Send>>, Option<String>, Vec<Branch>) {
        let mut s = self.lock();
        (s.panic_payload.take(), s.abort.take(), std::mem::take(&mut s.schedule))
    }
}
