//! Model-aware `std::sync` replacements: `Mutex`, `RwLock`, `Condvar`,
//! `mpsc`, plus `Arc` re-exported from std (reference counting needs no
//! schedule modeling — only blocking and ordering do).
//!
//! Every type keeps its data in a real `std::sync` primitive and layers the
//! *model* state (who owns, who waits) in the runtime. Inside a model the
//! std lock never contends — model-level ownership already serializes the
//! threads — and outside a model each operation degrades to the plain std
//! behavior. Signatures mirror std (`LockResult`, `PoisonError`) so code
//! written for `std::sync` compiles against this module unchanged; locks
//! are never actually poisoned, so every result is `Ok`.

pub use std::sync::Arc;

use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, OnceLock, PoisonError};

use crate::rt;

/// Lazily register a primitive with the current model execution.
fn model_id(slot: &OnceLock<usize>, rt: &rt::Rt) -> usize {
    *slot.get_or_init(|| rt.alloc_obj())
}

// ---- Mutex ----

/// A model-aware mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    id: OnceLock<usize>,
    data: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Whether the acquisition went through the model scheduler (and so the
    /// release must too).
    registered: bool,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { id: OnceLock::new(), data: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (a schedule point inside a model).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let registered = match rt::current() {
            Some((rtm, tid)) => {
                rtm.mutex_lock(tid, model_id(&self.id, &rtm));
                true
            }
            None => false,
        };
        let inner = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard { lock: self, inner: Some(inner), registered })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.deref().fmt(f)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // release the std lock first
        if self.registered {
            if let (Some((rtm, tid)), Some(id)) = (rt::current(), self.lock.id.get()) {
                rtm.mutex_unlock(tid, *id);
            }
        }
    }
}

// ---- RwLock ----

/// A model-aware reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    id: OnceLock<usize>,
    data: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    registered: bool,
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    registered: bool,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { id: OnceLock::new(), data: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access (a schedule point inside a model).
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let registered = match rt::current() {
            Some((rtm, tid)) => {
                rtm.rw_read(tid, model_id(&self.id, &rtm));
                true
            }
            None => false,
        };
        let inner = self.data.read().unwrap_or_else(PoisonError::into_inner);
        Ok(RwLockReadGuard { lock: self, inner: Some(inner), registered })
    }

    /// Acquire exclusive write access (a schedule point inside a model).
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let registered = match rt::current() {
            Some((rtm, tid)) => {
                rtm.rw_write(tid, model_id(&self.id, &rtm));
                true
            }
            None => false,
        };
        let inner = self.data.write().unwrap_or_else(PoisonError::into_inner);
        Ok(RwLockWriteGuard { lock: self, inner: Some(inner), registered })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.deref().fmt(f)
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.registered {
            if let (Some((rtm, tid)), Some(id)) = (rt::current(), self.lock.id.get()) {
                rtm.rw_unlock_read(tid, *id);
            }
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.deref().fmt(f)
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.registered {
            if let (Some((rtm, tid)), Some(id)) = (rt::current(), self.lock.id.get()) {
                rtm.rw_unlock_write(tid, *id);
            }
        }
    }
}

// ---- Condvar ----

/// A model-aware condition variable (FIFO wake order inside a model).
#[derive(Debug, Default)]
pub struct Condvar {
    id: OnceLock<usize>,
    cv: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { id: OnceLock::new(), cv: std::sync::Condvar::new() }
    }

    /// Release the guard's mutex, park until notified, re-acquire.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        if guard.registered {
            if let Some((rtm, tid)) = rt::current() {
                let cv_id = model_id(&self.id, &rtm);
                let mx_id = model_id(&lock.id, &rtm);
                guard.inner = None; // release the std lock
                guard.registered = false; // model release happens in the runtime
                drop(guard);
                rtm.condvar_wait(tid, cv_id, mx_id);
                let inner = lock.data.lock().unwrap_or_else(PoisonError::into_inner);
                return Ok(MutexGuard { lock, inner: Some(inner), registered: true });
            }
        }
        let inner = guard.inner.take().expect("guard accessed after release");
        drop(guard); // registered is false: plain std path
        let inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard { lock, inner: Some(inner), registered: false })
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        match rt::current() {
            Some((rtm, tid)) => rtm.condvar_notify(tid, model_id(&self.id, &rtm), false),
            None => self.cv.notify_one(),
        }
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        match rt::current() {
            Some((rtm, tid)) => rtm.condvar_notify(tid, model_id(&self.id, &rtm), true),
            None => self.cv.notify_all(),
        }
    }
}

// ---- mpsc ----

/// Model-aware multi-producer single-consumer channel.
pub mod mpsc {
    use std::collections::VecDeque;
    use std::sync::{Arc, OnceLock, PoisonError};

    use crate::rt;

    struct ChanState<T> {
        q: VecDeque<T>,
        senders: usize,
        rx_alive: bool,
    }

    struct Shared<T> {
        state: std::sync::Mutex<ChanState<T>>,
        /// Blocking support outside a model.
        cv: std::sync::Condvar,
        id: OnceLock<usize>,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, ChanState<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Wake model waiters and plain waiters alike after a state change.
        fn wake(&self) {
            if let Some((rtm, _)) = rt::current() {
                if let Some(id) = self.id.get() {
                    rtm.chan_wake(*id);
                }
            }
            self.cv.notify_all();
        }
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        // Like std's: no `T: Debug` bound, the payload is elided.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half; clonable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half.
    pub struct Receiver<T>(Arc<Shared<T>>);

    // Like std's: no `T: Debug` bound, no state exposed.
    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Create an unbounded channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: std::sync::Mutex::new(ChanState {
                q: VecDeque::new(),
                senders: 1,
                rx_alive: true,
            }),
            cv: std::sync::Condvar::new(),
            id: OnceLock::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Queue a message; fails only when the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            {
                let mut s = self.0.lock();
                if !s.rx_alive {
                    return Err(SendError(value));
                }
                s.q.push_back(value);
            }
            self.0.wake();
            if let Some((rtm, tid)) = rt::current() {
                super::model_id(&self.0.id, &rtm);
                rtm.switch(tid, true); // the receiver may run now
            }
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let last = {
                let mut s = self.0.lock();
                s.senders -= 1;
                s.senders == 0
            };
            if last {
                // Disconnect: blocked receivers must observe RecvError.
                self.0.wake();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            if let Some((rtm, tid)) = rt::current() {
                let id = super::model_id(&self.0.id, &rtm);
                rtm.switch(tid, true);
                loop {
                    {
                        let mut s = self.0.lock();
                        if let Some(v) = s.q.pop_front() {
                            return Ok(v);
                        }
                        if s.senders == 0 {
                            return Err(RecvError);
                        }
                    }
                    // Empty with live senders: park until channel activity.
                    rtm.chan_block(tid, id);
                }
            } else {
                let mut s = self.0.lock();
                loop {
                    if let Some(v) = s.q.pop_front() {
                        return Ok(v);
                    }
                    if s.senders == 0 {
                        return Err(RecvError);
                    }
                    s = self.0.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().rx_alive = false;
        }
    }
}
