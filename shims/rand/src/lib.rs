//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface this workspace uses: the [`Rng`] extension
//! trait (`gen_range`, `gen_bool`, `gen`), [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`]. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically solid for simulation workloads
//! and fully deterministic per seed, but **not** the same stream as upstream
//! `StdRng` (ChaCha12): seeded runs reproduce within this codebase, not
//! against numbers produced by the registry crate.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array upstream).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges a value can be uniformly drawn from (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as u128).wrapping_add(v)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                ((start as u128).wrapping_add(v)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Uniform in [start, end): the top of the range is exclusive.
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing extension methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A draw from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable via [`Rng::gen`].
pub trait Standard {
    /// Draw a value from the standard distribution.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (upstream uses ChaCha12; see the
    /// crate docs for the determinism caveat).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: usize = r.gen_range(3..9);
            assert!((3..9).contains(&n));
            let m: u64 = r.gen_range(0..1_000_000_000);
            assert!(m < 1_000_000_000);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn float_draws_cover_the_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mean: f64 = (0..50_000).map(|_| r.gen::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
