//! Offline shim for `serde_json`.
//!
//! Serializes the serde shim's [`Value`] tree to JSON text (compact and
//! pretty) and parses JSON text back into it. Matches serde_json's visible
//! conventions: object keys in struct-field order, non-finite floats become
//! `null`, integers print without a decimal point, pretty output indents by
//! two spaces.

#![forbid(unsafe_code)]

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // serde_json prints integral floats with a trailing `.0`.
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: format!("{msg} at byte {}", self.pos) }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_value() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("gpu-0\noops\"q\"".into())),
            ("count".into(), Value::U64(3)),
            ("util".into(), Value::F64(0.625)),
            ("whole".into(), Value::F64(2.0)),
            ("neg".into(), Value::I64(-7)),
            ("flags".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("empty".into(), Value::Object(vec![])),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        // U64/F64 survive textually: 2.0 re-parses as F64, 3 as U64.
        assert_eq!(to_string(&back).unwrap(), text);
        assert!(text.contains("\"util\":0.625"));
        assert!(text.contains("\"whole\":2.0"));
        assert!(text.contains("\\n"));
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::U64(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let text = to_string(&Value::F64(f64::NAN)).unwrap();
        assert_eq!(text, "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
