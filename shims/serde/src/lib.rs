//! Offline shim for the `serde` crate.
//!
//! Real serde is a zero-allocation visitor framework; this shim trades that
//! for a tiny tree-based model: [`Serialize`] lowers a value into a JSON
//! [`Value`], [`Deserialize`] lifts one back. The derive macros (feature
//! `derive`, from the sibling `serde_derive` shim) generate those two impls
//! for plain structs and enums, mirroring serde's default externally-tagged
//! representation so the JSON written by this workspace looks exactly like
//! what upstream serde_json would emit.
//!
//! Supported surface (all this workspace uses): `#[derive(Serialize,
//! Deserialize)]` on non-generic, attribute-free structs and enums, and the
//! `serde_json` shim's `to_string{,_pretty}` / `to_value` / `from_str`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialized form: a JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved (field declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion: any of the three number variants as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` (rejects negatives and non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            Value::F64(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            Value::F64(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Look up `name` in object `entries`, defaulting to `Null` when absent —
/// so `Option` fields deserialize from missing keys. Used by derived code.
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    entries.iter().find(|(k, _)| k == name).map_or(&NULL, |(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can be lowered into the data model.
pub trait Serialize {
    /// This value as a document tree.
    fn to_value(&self) -> Value;
}

/// A value that can be lifted back out of the data model.
pub trait Deserialize: Sized {
    /// Rebuild from a document tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Serialize impls.
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort the keys.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected {}, got {v:?}", stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected {}, got {v:?}", stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(f64::NAN), // serde_json writes non-finite floats as null
            _ => v.as_f64().ok_or_else(|| Error::custom(format!("expected f64, got {v:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got {} elements", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items =
            v.as_array().ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items =
            v.as_array().ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?;
        items.iter().map(T::from_value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u64>::from_value(&vec![1u64, 2].to_value()).unwrap(), vec![1, 2]);
        let t: (u64, String) =
            Deserialize::from_value(&(7u64, "x".to_string()).to_value()).unwrap();
        assert_eq!(t, (7, "x".to_string()));
    }

    #[test]
    fn coercions_and_errors() {
        assert_eq!(u64::from_value(&Value::I64(5)).unwrap(), 5);
        assert!(u64::from_value(&Value::I64(-5)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn field_lookup_defaults_to_null() {
        let obj = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(field(&obj, "a"), &Value::U64(1));
        assert_eq!(field(&obj, "missing"), &Value::Null);
    }
}
