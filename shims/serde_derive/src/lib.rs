//! Offline shim for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the serde *shim*'s
//! tree-based data model (`to_value`/`from_value`), mirroring upstream
//! serde's default externally-tagged representation. Since the usual
//! helper crates (`syn`, `quote`) are unavailable offline, the item is
//! parsed directly from the raw `proc_macro::TokenStream`.
//!
//! Supported input — exactly what this workspace derives on:
//! non-generic structs (named, tuple, unit) and enums (unit, tuple and
//! struct variants) without `#[serde(...)]` attributes. Anything else
//! panics with a clear compile-time message.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    body: Body,
}

/// Derive `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive shim: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(toks: &mut Tokens) {
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next(); // '#'
        match toks.next() {
            Some(TokenTree::Group(_)) => {}
            other => panic!("serde_derive shim: malformed attribute near {other:?}"),
        }
    }
}

fn skip_visibility(toks: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            // `pub(crate)` / `pub(super)` / ...
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

fn expect_ident(toks: &mut Tokens, what: &str) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected {what}, found {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attributes(&mut toks);
    skip_visibility(&mut toks);
    let kw = expect_ident(&mut toks, "`struct` or `enum`");
    let name = expect_ident(&mut toks, "type name");
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    let body = match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items (unions?)"),
    };
    Item { name, body }
}

/// Parse `name: Type, ...` field lists, returning the names. Types are
/// skipped with angle-bracket depth tracking so `HashMap<K, V>` commas do
/// not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut toks);
        skip_visibility(&mut toks);
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(id) = tree else {
            panic!("serde_derive shim: expected field name, found {tree:?}");
        };
        fields.push(id.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field, found {other:?}"),
        }
        let mut depth = 0i32;
        for tree in toks.by_ref() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Count the elements of a tuple-struct/tuple-variant field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut in_element = false;
    for tree in stream {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_element = false,
            _ => {
                if !in_element {
                    count += 1;
                    in_element = true;
                }
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut toks);
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(id) = tree else {
            panic!("serde_derive shim: expected variant name, found {tree:?}");
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name: id.to_string(), kind });
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("serde_derive shim: expected `,` after variant, found {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------

fn object_literal(entries: &[(String, String)]) -> String {
    let mut s = String::from("::serde::Value::Object(::std::vec![");
    for (key, expr) in entries {
        s.push_str(&format!("(::std::string::String::from(\"{key}\"), {expr}),"));
    }
    s.push_str("])");
    s
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let entries: Vec<(String, String)> = fields
                .iter()
                .map(|f| (f.clone(), format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            object_literal(&entries)
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                    )),
                    VariantKind::Tuple(1) => {
                        let payload = "::serde::Serialize::to_value(f0)".to_string();
                        let obj = object_literal(&[(vname.clone(), payload)]);
                        arms.push_str(&format!("{name}::{vname}(f0) => {obj},"));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let payload =
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(","));
                        let obj = object_literal(&[(vname.clone(), payload)]);
                        arms.push_str(&format!("{name}::{vname}({}) => {obj},", binds.join(",")));
                    }
                    VariantKind::Named(fields) => {
                        let entries: Vec<(String, String)> = fields
                            .iter()
                            .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                            .collect();
                        let payload = object_literal(&entries);
                        let obj = object_literal(&[(vname.clone(), payload)]);
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {obj},",
                            fields.join(",")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_fields_constructor(path: &str, fields: &[String], source: &str) -> String {
    let mut s = format!("{path} {{");
    for f in fields {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::field({source}, \"{f}\"))?,"
        ));
    }
    s.push('}');
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let ctor = named_fields_constructor(name, fields, "entries");
            format!(
                "let entries = v.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"{name}: expected object\"))?;\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"{name}: expected array\"))?;\n\
                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::Error::custom(\"{name}: wrong tuple arity\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(",")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(payload)?)),"
                    )),
                    VariantKind::Tuple(n) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => {{\n\
                             let items = payload.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"{name}::{vname}: expected array\"))?;\n\
                             if items.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"{name}::{vname}: wrong arity\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({items_expr}))\n\
                         }},",
                        items_expr = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(",")
                    )),
                    VariantKind::Named(fields) => {
                        let ctor =
                            named_fields_constructor(&format!("{name}::{vname}"), fields, "inner");
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let inner = payload.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(\
                                         \"{name}::{vname}: expected object\"))?;\n\
                                 ::std::result::Result::Ok({ctor})\n\
                             }},"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"{name}: unknown variant {{other}}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"{name}: unknown variant {{other}}\"))),\n\
                         }}\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"{name}: unexpected value {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
