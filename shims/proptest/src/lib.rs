//! Offline shim for `proptest`.
//!
//! Covers the combinator surface this workspace uses — range and tuple
//! strategies, `prop_map`, `Just`, `prop_oneof!`, `collection::vec`,
//! `bool::ANY`, `any::<T>()`, `proptest!`/`prop_assert*!` macros, and a
//! deterministic [`test_runner::TestRunner`]. Failing inputs are reported
//! but **not shrunk**: upstream's minimization machinery is out of scope
//! for an offline stand-in, so expect larger counterexamples.

#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Maximum shrink iterations (accepted for API compatibility; this
        /// shim's shrinking is bounded by construction).
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_shrink_iters: 1024 }
        }
    }

    /// Why a single case failed or was rejected.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold for this input.
        Fail(String),
        /// The input does not satisfy a precondition; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (filtered-out) input.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Result of a single property-test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives case generation. Only the RNG matters in this shim.
    pub struct TestRunner {
        pub(crate) rng: StdRng,
        config: Config,
    }

    impl TestRunner {
        /// A runner with the given configuration and a fixed seed.
        pub fn new(config: Config) -> Self {
            TestRunner { rng: StdRng::seed_from_u64(0x9e3779b97f4a7c15), config }
        }

        /// A runner with a deterministic, documented seed (matches upstream's
        /// `deterministic()` contract: same inputs on every invocation).
        pub fn deterministic() -> Self {
            Self::new(Config::default())
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Mutable access to the RNG for strategy implementations.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no shrinking: the "tree" produced by
    /// [`Strategy::new_tree`] holds a single value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Generate one value wrapped in a (non-shrinking) tree.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<SingleValueTree<Self::Value>, String>
        where
            Self::Value: Clone,
        {
            Ok(SingleValueTree(self.generate(runner)))
        }

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A generated value (upstream: a shrinkable tree; here: one value).
    pub trait ValueTree {
        /// The value type.
        type Value;

        /// The current (only) value.
        fn current(&self) -> Self::Value;
    }

    /// The only [`ValueTree`] in this shim: a single, unshrinkable value.
    #[derive(Debug, Clone)]
    pub struct SingleValueTree<T>(pub(crate) T);

    impl<T: Clone> ValueTree for SingleValueTree<T> {
        type Value = T;

        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    trait DynStrategy<V> {
        fn generate_dyn(&self, runner: &mut TestRunner) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, runner: &mut TestRunner) -> S::Value {
            self.generate(runner)
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, runner: &mut TestRunner) -> V {
            self.0.generate_dyn(runner)
        }
    }

    /// Uniform choice between strategies (backs `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from the already-boxed alternatives.
        ///
        /// # Panics
        /// Panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, runner: &mut TestRunner) -> V {
            let i = runner.rng.gen_range(0..self.options.len());
            self.options[i].generate(runner)
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

    macro_rules! inclusive_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    inclusive_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(runner),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// `Vec`s of values from `element`, with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = runner.rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean, uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.rng().gen_bool(0.5)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::{Rng, RngCore};

    /// Types with a canonical "whole domain" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.rng().next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.rng().gen_bool(0.5)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> f64 {
            // Finite, sign-symmetric; avoids NaN/inf which upstream also
            // excludes by default.
            (runner.rng().gen::<f64>() - 0.5) * 2e9
        }
    }

    /// Strategy for [`Arbitrary`] types.
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// The canonical strategy over all of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a property, failing the case (not panicking)
/// so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!(a == b)` with a diagnostic showing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, "{:?} != {:?}", left, right);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{} ({:?} != {:?})",
            ::std::format!($($fmt)*),
            left,
            right
        );
    }};
}

/// `prop_assert!(a != b)` with a diagnostic showing both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "both sides equal: {:?}", left);
    }};
}

/// Reject the current input (skipped, not failed) when a precondition is
/// unmet.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among alternative strategies producing the same type.
/// Weighted arms (`n => strat`) are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(x in strategy, ...) { body }` runs
/// `cases` times with fresh random inputs. No shrinking on failure.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config.clone());
            for case in 0..config.cases {
                let outcome = {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner);)+
                    let run = || -> $crate::test_runner::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    run()
                };
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "proptest case {}/{} failed: {}\n(offline shim: no shrinking)",
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            xs in crate::collection::vec(0.0f64..10.0, 1..8),
            n in 2usize..5,
            flag in crate::bool::ANY,
        ) {
            prop_assert!((1..8).contains(&xs.len()));
            prop_assert!(xs.iter().all(|x| (0.0..10.0).contains(x)));
            prop_assert!((2..5).contains(&n));
            let _ = flag;
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u64..10).prop_map(|x| x as i64),
                Just(-1i64),
            ],
        ) {
            prop_assert!(v == -1 || (0..10).contains(&v));
        }
    }

    #[test]
    fn new_tree_is_deterministic() {
        let strat = (0u64..1000, 0.0f64..1.0).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::test_runner::TestRunner::deterministic();
        let mut r2 = crate::test_runner::TestRunner::deterministic();
        let a = strat.new_tree(&mut r1).unwrap().current();
        let b = strat.new_tree(&mut r2).unwrap().current();
        assert_eq!(a, b);
    }

    #[test]
    fn rejected_cases_are_skipped() {
        fn body(x: u64) -> TestCaseResult {
            prop_assume!(x.is_multiple_of(2));
            prop_assert!(x.is_multiple_of(2));
            Ok(())
        }
        assert!(matches!(body(3), Err(TestCaseError::Reject(_))));
        assert!(body(4).is_ok());
    }
}
