//! Offline shim for `criterion`.
//!
//! Mirrors the criterion API this workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) with a simple wall-clock harness:
//!
//! * under `cargo bench` (cargo passes `--bench`), each benchmark is
//!   calibrated and timed, and a `time: ... ns/iter` line is printed;
//! * under `cargo test` (cargo passes `--test`) or when run directly, each
//!   benchmark body executes once so the code stays covered without the
//!   timing cost.
//!
//! No statistical analysis, baselines, or HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
///
/// Reads/writes through `std::hint::black_box`, same contract as criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Real timing (`cargo bench`).
    Measure,
    /// One pass per benchmark (`cargo test`, direct invocation).
    Smoke,
}

/// Benchmark registry and entry point.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: Mode::Smoke, filter: None }
    }
}

impl Criterion {
    /// Read harness mode (and an optional name filter) from the CLI
    /// arguments cargo passes to bench binaries.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" => self.mode = Mode::Measure,
                "--test" => self.mode = Mode::Smoke,
                // Flags with a value we accept-and-ignore.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20 }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.mode, &self.filter, &id, 20, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim derives its own budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim warms up implicitly during
    /// calibration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(self.criterion.mode, &self.criterion.filter, &full, self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(self.criterion.mode, &self.criterion.filter, &full, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (upstream finalizes reports here; the shim prints as
    /// it goes, so this is a no-op kept for API shape).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] (strings and ids both work).
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the workload.
pub struct Bencher {
    mode: Mode,
    samples: usize,
    /// Mean nanoseconds per iteration, filled in measure mode.
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Execute `f` repeatedly and record its mean wall-clock cost (measure
    /// mode), or once (smoke mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
            }
            Mode::Measure => {
                // Calibrate: grow the batch until one batch takes >= 2 ms.
                let mut batch: u64 = 1;
                loop {
                    let t = Instant::now();
                    for _ in 0..batch {
                        black_box(f());
                    }
                    let elapsed = t.elapsed();
                    if elapsed >= Duration::from_millis(2) || batch >= (1 << 24) {
                        break;
                    }
                    batch = batch.saturating_mul(4);
                }
                // Sample.
                let mut total = Duration::ZERO;
                let mut iters: u64 = 0;
                for _ in 0..self.samples {
                    let t = Instant::now();
                    for _ in 0..batch {
                        black_box(f());
                    }
                    total += t.elapsed();
                    iters += batch;
                }
                self.mean_ns = Some(total.as_nanos() as f64 / iters as f64);
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    mode: Mode,
    filter: &Option<String>,
    id: &str,
    samples: usize,
    mut f: F,
) {
    if let Some(needle) = filter {
        if !id.contains(needle.as_str()) {
            return;
        }
    }
    let mut b = Bencher { mode, samples, mean_ns: None };
    f(&mut b);
    match (mode, b.mean_ns) {
        (Mode::Measure, Some(ns)) => {
            if ns >= 1_000_000.0 {
                println!("{id:<50} time: {:>12.3} ms/iter", ns / 1e6);
            } else if ns >= 1_000.0 {
                println!("{id:<50} time: {:>12.3} us/iter", ns / 1e3);
            } else {
                println!("{id:<50} time: {:>12.1} ns/iter", ns);
            }
        }
        (Mode::Measure, None) => println!("{id:<50} (no Bencher::iter call)"),
        (Mode::Smoke, _) => println!("{id:<50} ok (smoke)"),
    }
}

/// Bundle benchmark functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a bench binary built from [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_bodies_once() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("one", |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::new("two", 7), &7u32, |b, &x| {
                b.iter(|| calls += x as usize)
            });
            g.finish();
        }
        assert_eq!(calls, 8);
    }

    #[test]
    fn measure_mode_reports_a_mean() {
        let mut b = Bencher { mode: Mode::Measure, samples: 3, mean_ns: None };
        b.iter(|| black_box(2u64.wrapping_mul(3)));
        assert!(b.mean_ns.unwrap() > 0.0);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("uniform", "3x16").0, "uniform/3x16");
        assert_eq!(BenchmarkId::from_parameter(512).0, "512");
    }
}
